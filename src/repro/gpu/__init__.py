"""GPU execution simulator (stand-in for the paper's K40c/K80c and P100).

The subpackage provides:

* :class:`~repro.gpu.device.DeviceSpec` with the paper's presets
  :data:`~repro.gpu.device.KEPLER_K40C` and
  :data:`~repro.gpu.device.PASCAL_P100` (Table III) plus the fleet
  extensions :data:`~repro.gpu.device.VOLTA_V100` and
  :data:`~repro.gpu.device.KNL_7250` (à la Chen et al.),
* :func:`~repro.gpu.profile.profile_matrix` — the one-pass structural
  analysis feeding the cost models,
* :func:`~repro.gpu.kernels.estimate_time` — per-format kernel cost
  models, and :func:`~repro.gpu.batch.estimate_batch` — the same models
  evaluated as one vectorised N×F sweep (bit-identical results),
* :class:`~repro.gpu.executor.SpMVExecutor` — the measurement harness
  implementing the paper's 50-repetition averaging protocol, with
  simulated OOM / kernel-failure modes and calibrated noise; its
  :meth:`~repro.gpu.executor.SpMVExecutor.benchmark_batch` sweeps whole
  corpora through the batched models.

See DESIGN.md ("Substitutions") for why an analytical simulator
preserves the behaviour the ML study depends on.
"""

from .batch import (  # noqa: F401
    CostBreakdownBatch,
    ProfileBatch,
    estimate_batch,
    format_bytes_batch,
)
from .cache import gather_traffic_bytes, gather_traffic_bytes_batch  # noqa: F401
from .device import (  # noqa: F401
    DEVICES,
    DeviceSpec,
    KEPLER_K40C,
    KNL_7250,
    PASCAL_P100,
    VOLTA_V100,
)
from .executor import (  # noqa: F401
    BenchmarkSweep,
    FormatFailure,
    KernelFailure,
    OutOfMemoryError,
    SimulationError,
    SpMVExecutor,
    TimingSample,
)
from .kernels import KERNEL_MODELS, CostBreakdown, estimate_time  # noqa: F401
from .noise import NoiseModel  # noqa: F401
from .profile import GatherStats, MatrixProfile, profile_matrix  # noqa: F401

__all__ = [
    "DeviceSpec",
    "KEPLER_K40C",
    "PASCAL_P100",
    "VOLTA_V100",
    "KNL_7250",
    "DEVICES",
    "MatrixProfile",
    "GatherStats",
    "profile_matrix",
    "gather_traffic_bytes",
    "gather_traffic_bytes_batch",
    "CostBreakdown",
    "CostBreakdownBatch",
    "ProfileBatch",
    "estimate_time",
    "estimate_batch",
    "format_bytes_batch",
    "KERNEL_MODELS",
    "NoiseModel",
    "SpMVExecutor",
    "TimingSample",
    "BenchmarkSweep",
    "FormatFailure",
    "SimulationError",
    "OutOfMemoryError",
    "KernelFailure",
]
