"""Structural matrix profile consumed by the kernel cost models.

A :class:`MatrixProfile` is the result of one O(nnz) analysis pass over
a matrix.  It collects every structure statistic the per-format cost
models need — row-length moments, warp-level divergence/waste factors,
the HYB split geometry, and cache-line gather statistics for the input
vector in both precisions — so that estimating all six formats costs a
single scan, mirroring how the feature extractor works (paper
Sec. IV-A notes feature sets 2–3 need exactly one O(nnz) scan).

The gather statistics deliberately capture *more* structure than the
paper's 17 features (true unique-cache-line counts at 128-byte
granularity): this is the "hidden" physical detail that keeps the ML
problem realistic — features explain most, but not all, of the
performance variance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from ..formats import CSRMatrix, SparseFormat

__all__ = ["MatrixProfile", "GatherStats", "profile_matrix"]


@dataclass(frozen=True)
class GatherStats:
    """Cache-line statistics of the x-vector gather at one precision.

    Attributes
    ----------
    elems_per_line:
        Vector elements per 128-byte cache line (32 fp32 / 16 fp64).
    unique_lines:
        Distinct x-lines touched anywhere in the matrix — the cold
        (compulsory) traffic.
    line_fetches:
        Sum over rows of distinct lines touched in that row — the
        traffic if no reuse survives across rows (streaming worst case).
    x_lines:
        Lines spanned by the whole x vector (``ceil(n_cols / epl)``).
    """

    elems_per_line: int
    unique_lines: int
    line_fetches: int
    x_lines: int


@dataclass(frozen=True)
class MatrixProfile:
    """One-pass structural summary of a sparse matrix.

    All fields are plain numbers so profiles are cheap to cache and
    hash; see :func:`profile_matrix`.
    """

    n_rows: int
    n_cols: int
    nnz: int
    # Row-length distribution
    nnz_mu: float       #: mean entries per row
    nnz_sigma: float    #: population std-dev of entries per row
    nnz_max: int        #: longest row
    nnz_min: int        #: shortest row
    empty_rows: int     #: rows with no entries
    # Warp-level factors (32-row groups, as scheduled by scalar CSR)
    warp_divergence: float  #: sum(32 * warp_max) / nnz, >= 1; scalar-CSR cost inflation
    vector_waste: float     #: sum(ceil(len/32)*32) / nnz, >= 1; warp-per-row lane waste
    # HYB split geometry at the paper's nnz_mu threshold
    hyb_threshold: int   #: ELL width k of the HYB split
    hyb_ell_nnz: int     #: entries stored in the ELL part
    hyb_spill_nnz: int   #: entries spilled to the COO part
    hyb_spill_rows: int  #: rows longer than k (rows receiving atomic updates)
    # Extension-format geometry (DIA / BSR, see repro.formats.dia/bsr)
    n_diags: int         #: occupied diagonals (DIA plane height)
    bsr_blocks: int      #: occupied 4x4 blocks (BSR block count)
    # Gather locality, per precision
    gather: Dict[str, GatherStats]
    # Stable identity for noise fixed effects
    digest: bytes

    @property
    def density(self) -> float:
        """Fraction of cells that are non-zero."""
        cells = self.n_rows * self.n_cols
        return self.nnz / cells if cells else 0.0

    @property
    def row_cv(self) -> float:
        """Coefficient of variation of the row lengths (σ/μ)."""
        return self.nnz_sigma / self.nnz_mu if self.nnz_mu > 0 else 0.0

    @property
    def ell_width(self) -> int:
        """ELL padded width (= longest row)."""
        return self.nnz_max

    @property
    def ell_padding_ratio(self) -> float:
        """ELL stored slots per non-zero (>= 1)."""
        if self.nnz == 0:
            return 1.0
        return self.n_rows * self.nnz_max / self.nnz


def _structure_digest(csr: CSRMatrix) -> bytes:
    """Stable 16-byte digest of the matrix structure.

    Hashes the shape plus a bounded stride sample of the index arrays,
    so it is O(1)-ish for huge matrices yet collision-free in practice
    for distinct corpus matrices.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64([csr.n_rows, csr.n_cols, csr.nnz]).tobytes())
    for arr in (csr.indptr, csr.indices):
        step = max(1, arr.size // 4096)
        h.update(np.ascontiguousarray(arr[::step]).tobytes())
    return h.digest()


def _gather_stats(csr: CSRMatrix, itemsize: int, line_bytes: int = 128) -> GatherStats:
    """Cache-line gather statistics at the given value size."""
    epl = max(1, line_bytes // itemsize)
    x_lines = -(-max(csr.n_cols, 1) // epl)
    if csr.nnz == 0:
        return GatherStats(epl, 0, 0, x_lines)
    line = csr.indices.astype(np.int64) // epl
    # Canonical CSR sorts columns within each row, so per-row distinct
    # lines are transitions of `line` plus one per non-empty row.
    new_line = np.empty(line.size, dtype=bool)
    new_line[0] = True
    np.not_equal(line[1:], line[:-1], out=new_line[1:])
    lengths = np.diff(csr.indptr)
    starts = csr.indptr[:-1][lengths > 0]
    new_line[starts] = True
    line_fetches = int(np.count_nonzero(new_line))
    unique_lines = int(np.unique(line).size)
    return GatherStats(epl, unique_lines, line_fetches, x_lines)


def profile_matrix(matrix: Union[SparseFormat, CSRMatrix]) -> MatrixProfile:
    """Run the single O(nnz) analysis pass and return the profile.

    Thin wrapper over :func:`repro.analysis.analyze_matrix`, which
    computes this profile *and* the 17 features from one shared scan;
    callers needing both should use ``analyze_matrix`` (or
    :meth:`repro.gpu.SpMVExecutor.analyze`) directly so the scan is not
    repeated.  Results are bit-identical to the historical standalone
    pass (see ``tests/test_analysis_equivalence.py``).
    """
    from ..analysis import analyze_matrix

    return analyze_matrix(matrix).profile
