"""The SpMV execution engine: numerics + simulated timing.

:class:`SpMVExecutor` stands in for the paper's measurement harness
(cuSPARSE / CSR5 / merge-CSR kernels timed on a K40c-K80c and a P100).
For a given matrix and format it

1. optionally executes ``y = A @ x`` *numerically* with the real format
   data structures (so every kernel is functionally exercised), and
2. produces a timing sample from the analytical kernel model
   (:mod:`repro.gpu.kernels`) combined with the noise model
   (:mod:`repro.gpu.noise`).

The paper's measurement protocol — run each (matrix, format) 50 times
and average (Sec. IV-B) — is :meth:`SpMVExecutor.benchmark`.

Failure modes are simulated too: a format whose device footprint
exceeds GPU memory raises :class:`OutOfMemoryError`, and an ELL
conversion whose padding blows past ``ell_padding_limit`` raises
:class:`KernelFailure` — together these reproduce the ~400 SuiteSparse
matrices the paper had to drop because they "did not fit in the GPU
memory or failed to execute for one or more storage formats".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .. import obs
from ..formats import FORMAT_NAMES, SparseFormat, as_format
from . import batch as _batch
from .batch import CostBreakdownBatch, ProfileBatch, format_bytes_batch
from .cache import LRUCache
from .device import DeviceSpec
from .kernels import IDX, CostBreakdown, estimate_time
from .noise import NoiseModel
from .profile import MatrixProfile

__all__ = [
    "SpMVExecutor",
    "TimingSample",
    "BenchmarkSweep",
    "FormatFailure",
    "SimulationError",
    "OutOfMemoryError",
    "KernelFailure",
]


class SimulationError(RuntimeError):
    """Base class for simulated execution failures."""


class OutOfMemoryError(SimulationError):
    """The format's device footprint exceeds GPU memory."""


class KernelFailure(SimulationError):
    """The kernel cannot execute this matrix (e.g. ELL padding blow-up)."""


@dataclass(frozen=True)
class FormatFailure:
    """Structured reason one format could not be benchmarked.

    ``error`` is the class name of the exception the scalar path raises
    for the same matrix (``OutOfMemoryError``, ``KernelFailure``, ...)
    and ``reason`` its message, so ``str(failure)`` reproduces the
    historical ``f"{type(exc).__name__}: {exc}"`` labeling string.
    """

    fmt: str
    error: str
    reason: str

    def __str__(self) -> str:
        return f"{self.error}: {self.reason}"


@dataclass(frozen=True)
class TimingSample:
    """Aggregated timing of one (matrix, format) configuration.

    ``seconds`` is the mean over ``reps`` repetitions — the quantity the
    paper uses as its regression label; ``gflops`` the corresponding
    achieved rate (``2 nnz / seconds``).
    """

    fmt: str
    device: str
    precision: str
    seconds: float
    std_seconds: float
    reps: int
    gflops: float
    breakdown: CostBreakdown

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("timing must be positive")


class BenchmarkSweep(Dict[str, Optional[TimingSample]]):
    """Result of benchmarking one matrix across several formats.

    A plain ``dict`` of ``fmt -> TimingSample`` (``None`` where the
    format could not run) — so historical ``benchmark_all`` callers
    keep working unchanged — plus :attr:`failures`, mapping each failed
    format to its structured :class:`FormatFailure`.
    """

    def __init__(
        self,
        samples: Dict[str, Optional[TimingSample]],
        failures: Dict[str, FormatFailure],
    ) -> None:
        super().__init__(samples)
        self.failures = dict(failures)


class SpMVExecutor:
    """Simulated GPU SpMV runner for one device + precision.

    Parameters
    ----------
    device:
        Target :class:`~repro.gpu.device.DeviceSpec`.
    precision:
        ``"single"`` or ``"double"`` (paper evaluates both).
    noise:
        Noise model; default matches the calibration used for the
        reproduction experiments.  Pass ``NoiseModel(0, 0)`` for fully
        deterministic timings.
    seed:
        Seed of the per-run jitter stream.
    ell_padding_limit:
        Optional cap on ELL slots-per-nnz beyond which the ELL kernel
        is declared failed even if it would fit in memory.  ``None``
        (default) lets ELL run arbitrarily padded — like a real GPU,
        where a skewed matrix makes ELL *slow* long before the
        allocation fails — so only genuine OOM drops a matrix.
    profile_cache_maxsize:
        Bound on the per-structure analysis cache (LRU eviction); a
        long campaign streams thousands of matrices through one
        executor, so the cache must not grow without limit.  ``None``
        restores the old unbounded behaviour.
    format_cache_maxsize:
        Bound on the converted-format cache used by :meth:`run` (LRU);
        converted formats hold full index/value arrays, so the default
        is deliberately small.  ``None`` is unbounded.
    """

    def __init__(
        self,
        device: DeviceSpec,
        precision: str = "single",
        *,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
        ell_padding_limit: Optional[float] = None,
        profile_cache_maxsize: Optional[int] = 256,
        format_cache_maxsize: Optional[int] = 16,
    ) -> None:
        if precision not in ("single", "double"):
            raise ValueError(f"precision must be 'single' or 'double', got {precision!r}")
        self.device = device
        self.precision = precision
        self.noise = noise if noise is not None else NoiseModel()
        self.rng = np.random.default_rng(seed)
        self.ell_padding_limit = None if ell_padding_limit is None else float(ell_padding_limit)
        self._analysis_cache = LRUCache(profile_cache_maxsize)
        self._format_cache = LRUCache(format_cache_maxsize)

    # -- profiling -------------------------------------------------------

    def analyze(self, matrix: SparseFormat):
        """One-pass structural analysis (profile + 17 features), cached.

        Returns a :class:`~repro.analysis.MatrixAnalysis`; repeat calls
        for the same structure are served from a bounded LRU cache
        keyed by the structure digest.
        """
        from ..analysis import analyze_matrix

        analysis = analyze_matrix(matrix)
        cached = self._analysis_cache.setdefault(analysis.profile.digest, analysis)
        if obs.enabled():
            obs.incr("gpu.analysis_cache_hits" if cached is not analysis
                     else "gpu.analysis_cache_misses")
        return cached

    def profile(self, matrix: Union[SparseFormat, MatrixProfile]) -> MatrixProfile:
        """Profile ``matrix`` (cached by structure digest)."""
        if isinstance(matrix, MatrixProfile):
            return matrix
        return self.analyze(matrix).profile

    # -- feasibility -------------------------------------------------------

    def _format_bytes(self, prof: MatrixProfile, fmt: str) -> float:
        """Analytic device footprint of ``fmt`` for this matrix."""
        if "?" in fmt:
            from .. import tuning

            return tuning.config_bytes(prof, fmt, self.precision)
        v = 4 if self.precision == "single" else 8
        nnz, rows = prof.nnz, prof.n_rows
        if fmt == "coo":
            return nnz * (2 * IDX + v)
        if fmt in ("csr", "merge_csr"):
            return nnz * (IDX + v) + (rows + 1) * IDX
        if fmt == "ell":
            return rows * prof.nnz_max * (IDX + v)
        if fmt == "hyb":
            return (
                rows * min(prof.hyb_threshold, prof.nnz_max) * (IDX + v)
                + prof.hyb_spill_nnz * (2 * IDX + v)
            )
        if fmt == "csr5":
            return nnz * (IDX + v) + (rows + 1) * IDX + nnz / 8.0
        if fmt == "dia":
            return prof.n_diags * rows * v + prof.n_diags * IDX
        if fmt == "bsr":
            return prof.bsr_blocks * 16 * v + prof.bsr_blocks * IDX
        raise KeyError(fmt)

    def check_feasible(self, matrix: Union[SparseFormat, MatrixProfile], fmt: str) -> None:
        """Raise a :class:`SimulationError` if ``fmt`` cannot run here.

        ``fmt`` may be a tuning configuration key; parameter-specific
        constraints (e.g. the ELL width cap) are checked between the
        padding and OOM checks, with the padding limit keyed off the
        *base* format so every ELL configuration honours it.
        """
        prof = self.profile(matrix)
        base_fmt = fmt.partition("?")[0] if "?" in fmt else fmt
        if (
            base_fmt == "ell"
            and self.ell_padding_limit is not None
            and prof.nnz
            and prof.ell_padding_ratio > self.ell_padding_limit
        ):
            raise KernelFailure(
                f"ELL padding ratio {prof.ell_padding_ratio:.1f} exceeds the "
                f"limit of {self.ell_padding_limit:g}"
            )
        if "?" in fmt:
            from .. import tuning

            tuning.check_feasible_config(prof, fmt)
        v = 4 if self.precision == "single" else 8
        need = self._format_bytes(prof, fmt) + (prof.n_rows + prof.n_cols) * v
        if need > self.device.global_mem_bytes:
            raise OutOfMemoryError(
                f"{fmt} needs {need / 1e9:.2f} GB, device has "
                f"{self.device.global_mem_bytes / 1e9:.2f} GB"
            )

    def feasibility_batch(
        self, batch: ProfileBatch, formats: Sequence[str]
    ) -> List[Dict[str, FormatFailure]]:
        """Vectorized :meth:`check_feasible` over a whole batch.

        Returns one ``fmt -> FormatFailure`` dict per matrix; formats
        absent from a dict are feasible.  Failure strings are identical
        to the scalar exceptions (the comparisons run on int64 arrays,
        so the OOM threshold is exact like the scalar Python-int path).
        """
        n = len(batch)
        failures: List[Dict[str, FormatFailure]] = [{} for _ in range(n)]
        v = 4 if self.precision == "single" else 8
        vec_bytes = (batch.n_rows + batch.n_cols) * v
        pad_bad = None
        ratio = None
        if self.ell_padding_limit is not None:
            ratio = batch.ell_padding_ratio
            pad_bad = (batch.nnz != 0) & (ratio > self.ell_padding_limit)
        for fmt in dict.fromkeys(formats):
            need = format_bytes_batch(batch, fmt, self.precision) + vec_bytes
            oom = need > self.device.global_mem_bytes
            base_fmt = fmt.partition("?")[0] if "?" in fmt else fmt
            if base_fmt == "ell" and pad_bad is not None:
                # Padding blow-up is reported before OOM, as in the
                # scalar check.
                for i in np.nonzero(pad_bad)[0]:
                    i = int(i)
                    failures[i][fmt] = FormatFailure(
                        fmt,
                        "KernelFailure",
                        f"ELL padding ratio {ratio[i]:.1f} exceeds the "
                        f"limit of {self.ell_padding_limit:g}",
                    )
                oom = oom & ~pad_bad
            if "?" in fmt:
                # Parameter-specific infeasibilities (e.g. the ELL
                # width cap) are reported before OOM, after padding —
                # same order as the scalar check.
                from .. import tuning

                for i, (error, reason) in tuning.infeasible_batch(
                    batch, fmt
                ).items():
                    if fmt not in failures[i]:
                        failures[i][fmt] = FormatFailure(fmt, error, reason)
                        oom[i] = False
            for i in np.nonzero(oom)[0]:
                i = int(i)
                failures[i][fmt] = FormatFailure(
                    fmt,
                    "OutOfMemoryError",
                    f"{fmt} needs {need[i] / 1e9:.2f} GB, device has "
                    f"{self.device.global_mem_bytes / 1e9:.2f} GB",
                )
        return failures

    # -- timing -------------------------------------------------------------

    def estimate(self, matrix: Union[SparseFormat, MatrixProfile], fmt: str) -> CostBreakdown:
        """Noise-free analytical estimate for one invocation."""
        prof = self.profile(matrix)
        return estimate_time(fmt, prof, self.device, self.precision)

    def benchmark(
        self,
        matrix: Union[SparseFormat, MatrixProfile],
        fmt: str,
        *,
        reps: int = 50,
    ) -> TimingSample:
        """Time ``fmt`` on ``matrix``: the paper's 50-rep mean protocol."""
        if reps <= 0:
            raise ValueError("reps must be positive")
        prof = self.profile(matrix)
        self.check_feasible(prof, fmt)
        base = estimate_time(fmt, prof, self.device, self.precision)
        fixed = self.noise.structural_factor(
            prof.digest, fmt, self.device.name, self.precision
        )
        runs = base.seconds * fixed * self.noise.run_factors(self.rng, reps)
        mean = float(runs.mean())
        if obs.enabled():
            # Per-format kernel-model time distribution: what the
            # simulated device reported, not how long simulating took.
            obs.incr("gpu.benchmarks")
            obs.observe(f"gpu.model_seconds.{fmt}", mean)
        return TimingSample(
            fmt=fmt,
            device=self.device.name,
            precision=self.precision,
            seconds=mean,
            std_seconds=float(runs.std()),
            reps=reps,
            gflops=base.flops / mean / 1e9 if mean > 0 else 0.0,
            breakdown=base,
        )

    def estimate_batch(
        self,
        matrices: Union[ProfileBatch, Sequence[Union[SparseFormat, MatrixProfile]]],
        formats: Optional[Sequence[str]] = None,
    ) -> CostBreakdownBatch:
        """Noise-free estimates for N matrices × F formats in one pass.

        Results are bit-identical to per-pair :meth:`estimate` calls;
        ``formats=None`` evaluates every registered kernel model.
        """
        if not isinstance(matrices, ProfileBatch):
            matrices = ProfileBatch.from_profiles(
                self.profile(m) for m in matrices
            )
        return _batch.estimate_batch(
            matrices, formats, self.device, self.precision
        )

    def benchmark_batch(
        self,
        matrices: Sequence[Union[SparseFormat, MatrixProfile]],
        *,
        formats: Sequence[str] = FORMAT_NAMES,
        reps: int = 50,
    ) -> List[BenchmarkSweep]:
        """Benchmark N matrices × F formats through one batched sweep.

        Profiling, feasibility/OOM checks and the cost models all run
        vectorized over the whole batch; only the noise sampling walks
        the per-matrix jitter stream.  Each matrix's jitter is drawn as
        a single block covering its feasible formats in order, which
        reproduces the scalar per-format draws bit for bit (infeasible
        formats consume no randomness, exactly like the scalar path
        that raises before sampling) — so sweeps are interchangeable
        with historical :meth:`benchmark` loops for any batch size.
        """
        if reps <= 0:
            raise ValueError("reps must be positive")
        profiles = [self.profile(m) for m in matrices]
        batch = ProfileBatch.from_profiles(profiles)
        failures = self.feasibility_batch(batch, formats)
        cost = _batch.estimate_batch(
            batch, tuple(formats), self.device, self.precision
        )
        col = {fmt: j for j, fmt in enumerate(cost.formats)}
        s = self.noise.sigma_run
        sweeps: List[BenchmarkSweep] = []
        for i, prof in enumerate(profiles):
            fail_i = failures[i]
            feasible = []
            for fmt in formats:
                if fmt in fail_i:
                    continue
                if not np.isfinite(cost.seconds[i, col[fmt]]):
                    # The scalar kernel raises ZeroDivisionError for
                    # degenerate zero-efficiency cells (e.g. HYB on an
                    # empty matrix); keep the labeling string identical.
                    fail_i[fmt] = FormatFailure(
                        fmt, "ZeroDivisionError", "float division by zero"
                    )
                    continue
                feasible.append(fmt)
            if s > 0.0 and feasible:
                z = self.rng.standard_normal(reps * len(feasible))
                factors = np.exp(s * z - 0.5 * s * s).reshape(len(feasible), reps)
            else:
                factors = np.ones((len(feasible), reps))
            samples: Dict[str, Optional[TimingSample]] = {
                fmt: None for fmt in formats
            }
            for k, fmt in enumerate(feasible):
                j = col[fmt]
                base_seconds = float(cost.seconds[i, j])
                fixed = self.noise.structural_factor(
                    prof.digest, fmt, self.device.name, self.precision
                )
                runs = base_seconds * fixed * factors[k]
                mean = float(runs.mean())
                if obs.enabled():
                    obs.incr("gpu.benchmarks")
                    obs.observe(f"gpu.model_seconds.{fmt}", mean)
                flops = float(cost.flops[i, j])
                samples[fmt] = TimingSample(
                    fmt=fmt,
                    device=self.device.name,
                    precision=self.precision,
                    seconds=mean,
                    std_seconds=float(runs.std()),
                    reps=reps,
                    gflops=flops / mean / 1e9 if mean > 0 else 0.0,
                    breakdown=cost.at(i, j),
                )
            sweeps.append(BenchmarkSweep(samples, fail_i))
        return sweeps

    def benchmark_all(
        self,
        matrix: Union[SparseFormat, MatrixProfile],
        *,
        formats=FORMAT_NAMES,
        reps: int = 50,
    ) -> BenchmarkSweep:
        """Benchmark every format in one batched sweep.

        Returns a :class:`BenchmarkSweep`: still a ``fmt -> sample``
        dict with ``None`` for failed formats, but the profile/analysis
        work is shared across formats (one vectorized pass instead of a
        per-format loop) and ``sweep.failures`` carries the structured
        per-format failure reasons the old API swallowed.
        """
        return self.benchmark_batch([matrix], formats=formats, reps=reps)[0]

    # -- numeric execution ---------------------------------------------------

    def run(
        self,
        matrix: SparseFormat,
        fmt: str,
        x: Optional[np.ndarray] = None,
        *,
        reps: int = 1,
    ) -> tuple:
        """Execute SpMV numerically *and* time it.

        Returns ``(y, sample)`` where ``y`` is the numerically computed
        product using the real format data structures (converted if
        needed) and ``sample`` the :class:`TimingSample`.  This is the
        full-fidelity path used by the examples and integration tests;
        dataset labeling uses :meth:`benchmark` to avoid materialising
        six formats for every corpus matrix.
        """
        prof = self.profile(matrix)
        self.check_feasible(prof, fmt)
        dtype = np.float32 if self.precision == "single" else np.float64
        # Converted formats are cached per (structure digest, fmt, dtype)
        # so repeated runs of the same matrix skip the COO round-trip and
        # format build.  The digest covers structure only, so the cached
        # entry also pins its source object and is bypassed when a
        # different matrix instance shares the structure (same shape and
        # sparsity pattern but possibly different values).
        key = (prof.digest, fmt, np.dtype(dtype).str)
        hit = self._format_cache.get(key)
        if hit is not None and hit[0] is matrix:
            A = hit[1]
            if obs.enabled():
                obs.incr("gpu.format_cache_hits")
        else:
            coo = matrix.to_coo().astype(dtype)
            A = as_format(coo, fmt)
            self._format_cache.put(key, (matrix, A))
            if obs.enabled():
                obs.incr("gpu.format_cache_misses")
        if x is None:
            x = np.ones(matrix.n_cols, dtype=dtype)
        y = A.spmv(np.asarray(x, dtype=dtype))
        sample = self.benchmark(prof, fmt, reps=reps)
        return y, sample
