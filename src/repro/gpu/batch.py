"""Batched, vectorized evaluation of the kernel cost models.

The scalar path in :mod:`repro.gpu.kernels` estimates one
(matrix, format) pair per Python call — fine for a probe, but campaigns
and the serving indirect mode sweep N matrices × F formats, and the
interpreter overhead of ``N * F`` calls dominates the arithmetic.  This
module evaluates the same models as numpy sweeps:

* :class:`ProfileBatch` — a struct-of-arrays view over N
  :class:`~repro.gpu.profile.MatrixProfile` objects (one int64/float64
  array per profile field, gather statistics per precision),
* :func:`estimate_batch` — all requested format kernels over the whole
  batch in one pass, returning a :class:`CostBreakdownBatch` of
  ``(N, F)`` arrays,
* :func:`format_bytes_batch` — the vectorized device-footprint model
  backing the executor's batched feasibility/OOM checks.

Bit-identity contract
---------------------
Every vectorized kernel reproduces the *exact operation order* of its
scalar twin in :mod:`repro.gpu.kernels` (same associativity, same
int-vs-float promotion points, ``np.where``/``np.divide(where=...)``
standing in for branches), so each ``(i, j)`` cell of the batch equals
the scalar ``estimate_time(formats[j], profiles[i], ...)`` result bit
for bit.  ``tests/test_gpu_batch.py`` pins this for all formats ×
devices × precisions; the contract is what lets the campaign labeler
and the serving path switch to the batched sweep without invalidating
any previously recorded dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .cache import gather_traffic_bytes_batch
from .device import DeviceSpec
from .kernels import IDX, KERNEL_MODELS, CostBreakdown, _itemsize
from .profile import MatrixProfile

__all__ = [
    "ProfileBatch",
    "CostBreakdownBatch",
    "estimate_batch",
    "format_bytes_batch",
]

#: Precisions every profile carries gather statistics for.
_PRECISIONS = ("single", "double")

#: Profile fields stored as int64 arrays.
_INT_FIELDS = (
    "n_rows",
    "n_cols",
    "nnz",
    "nnz_max",
    "nnz_min",
    "empty_rows",
    "hyb_threshold",
    "hyb_ell_nnz",
    "hyb_spill_nnz",
    "hyb_spill_rows",
    "n_diags",
    "bsr_blocks",
)

#: Profile fields stored as float64 arrays.
_FLOAT_FIELDS = ("nnz_mu", "nnz_sigma", "warp_divergence", "vector_waste")


@dataclass(frozen=True)
class ProfileBatch:
    """Struct-of-arrays over N :class:`MatrixProfile` objects.

    Integer structure counters are int64 arrays (so feasibility
    comparisons stay exact, like the scalar path's Python ints) and the
    row-statistics are float64; ``gather_unique``/``gather_fetches``
    hold the per-precision cache-line gather statistics.  Build one
    with :meth:`from_profiles`.
    """

    n_rows: np.ndarray
    n_cols: np.ndarray
    nnz: np.ndarray
    nnz_mu: np.ndarray
    nnz_sigma: np.ndarray
    nnz_max: np.ndarray
    nnz_min: np.ndarray
    empty_rows: np.ndarray
    warp_divergence: np.ndarray
    vector_waste: np.ndarray
    hyb_threshold: np.ndarray
    hyb_ell_nnz: np.ndarray
    hyb_spill_nnz: np.ndarray
    hyb_spill_rows: np.ndarray
    n_diags: np.ndarray
    bsr_blocks: np.ndarray
    gather_unique: Dict[str, np.ndarray]
    gather_fetches: Dict[str, np.ndarray]
    digests: Tuple[bytes, ...]

    @classmethod
    def from_profiles(cls, profiles: Iterable[MatrixProfile]) -> "ProfileBatch":
        """Pack a sequence of profiles into parallel arrays."""
        profs = list(profiles)
        fields: Dict[str, np.ndarray] = {}
        for name in _INT_FIELDS:
            fields[name] = np.array([getattr(p, name) for p in profs], dtype=np.int64)
        for name in _FLOAT_FIELDS:
            fields[name] = np.array([getattr(p, name) for p in profs], dtype=np.float64)
        gather_unique = {
            prec: np.array([p.gather[prec].unique_lines for p in profs], dtype=np.int64)
            for prec in _PRECISIONS
        }
        gather_fetches = {
            prec: np.array([p.gather[prec].line_fetches for p in profs], dtype=np.int64)
            for prec in _PRECISIONS
        }
        return cls(
            gather_unique=gather_unique,
            gather_fetches=gather_fetches,
            digests=tuple(p.digest for p in profs),
            **fields,
        )

    def __len__(self) -> int:
        return int(self.n_rows.shape[0])

    @property
    def size(self) -> int:
        """Number of matrices in the batch."""
        return len(self)

    @property
    def row_cv(self) -> np.ndarray:
        """Row-length coefficient of variation, 0 where ``nnz_mu == 0``."""
        cv = np.zeros(len(self))
        np.divide(self.nnz_sigma, self.nnz_mu, out=cv, where=self.nnz_mu > 0)
        return cv

    @property
    def ell_padding_ratio(self) -> np.ndarray:
        """ELL stored slots per non-zero (1.0 for empty matrices)."""
        ratio = np.ones(len(self))
        np.divide(self.n_rows * self.nnz_max, self.nnz, out=ratio, where=self.nnz != 0)
        return ratio


# ---------------------------------------------------------------------------
# Assembly helpers (vector twins of kernels._assemble / _reduction_seconds)
# ---------------------------------------------------------------------------


def _as_column(value, n: int) -> np.ndarray:
    """Broadcast a scalar or (N,) array to a float64 (N,) array."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    return arr


def _assemble_batch(
    batch: ProfileBatch,
    device: DeviceSpec,
    *,
    matrix_bytes,
    x_bytes,
    y_bytes,
    efficiency,
    imbalance,
    compute_seconds,
    launches: float,
    setup_us: float = 0.0,
) -> Dict[str, np.ndarray]:
    """Vector twin of :func:`repro.gpu.kernels._assemble`.

    Operation order matches the scalar helper exactly; the
    ``total_bytes == 0`` branch (zero-traffic matrices get zero memory
    time, not 0/0) is reproduced with a masked divide.
    """
    n = len(batch)
    total_bytes = matrix_bytes + x_bytes + y_bytes
    w = np.maximum(np.asarray(total_bytes, dtype=np.float64), 0.0)
    utilization = w / (w + device.saturation_bytes)
    bw = device.stream_bandwidth * efficiency * utilization
    mem_seconds = np.zeros(n)
    # Degenerate zero-efficiency cells (e.g. HYB on an empty matrix,
    # where the scalar kernel raises ZeroDivisionError) come out as inf
    # here; the executor maps non-finite estimates to failures.
    with np.errstate(divide="ignore"):
        np.divide(total_bytes, bw, out=mem_seconds, where=total_bytes != 0)
    launch_seconds = launches * device.launch_overhead_us * 1e-6 + setup_us * 1e-6
    seconds = np.maximum(mem_seconds, compute_seconds) * imbalance + launch_seconds
    return {
        "seconds": _as_column(seconds, n),
        "matrix_bytes": _as_column(matrix_bytes, n),
        "x_bytes": _as_column(x_bytes, n),
        "y_bytes": _as_column(y_bytes, n),
        "compute_seconds": _as_column(compute_seconds, n),
        "launch_seconds": _as_column(launch_seconds, n),
        "imbalance": _as_column(imbalance, n),
        "efficiency": _as_column(efficiency, n),
        "flops": 2.0 * batch.nnz,
    }


def _reduction_seconds_batch(device: DeviceSpec, ops, cycles_per_op: float):
    throughput = device.n_sm * device.cores_per_sm * device.clock_hz
    return ops * cycles_per_op / throughput


def _gather_batch(
    batch: ProfileBatch, device: DeviceSpec, precision: str, *, locality_penalty: float = 1.0
) -> np.ndarray:
    return gather_traffic_bytes_batch(
        batch.gather_unique[precision],
        batch.gather_fetches[precision],
        batch.nnz,
        device,
        locality_penalty=locality_penalty,
    )


# ---------------------------------------------------------------------------
# Vectorized per-format models (twins of kernels._coo ... kernels._bsr)
# ---------------------------------------------------------------------------


def _coo_batch(batch: ProfileBatch, device: DeviceSpec, precision: str):
    v = _itemsize(precision)
    nnz = batch.nnz
    matrix_bytes = nnz * (2 * IDX + v)
    x_bytes = _gather_batch(batch, device, precision)
    atomic_eff = device.atomic_efficiency
    if precision == "double" and device.arch == "kepler":
        atomic_eff *= 0.5
    rows_touched = batch.n_rows - batch.empty_rows
    y_bytes = 2.0 * rows_touched * v / max(atomic_eff, 1e-3)
    compute = _reduction_seconds_batch(device, nnz, cycles_per_op=4.0)
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.58,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=2.0,
    )


def _csr_batch(batch: ProfileBatch, device: DeviceSpec, precision: str):
    v = _itemsize(precision)
    nnz = batch.nnz
    rows = batch.n_rows
    matrix_bytes = nnz * (IDX + v) + (rows + 1) * IDX
    x_bytes = _gather_batch(batch, device, precision)
    y_bytes = rows * v

    scalar = _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.30,
        imbalance=1.0 + 0.8 * (batch.warp_divergence - 1.0),
        compute_seconds=_reduction_seconds_batch(device, nnz, 1.0),
        launches=1,
    )
    waste = batch.vector_waste
    vector = _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.88,
        imbalance=1.0 + 0.45 * (waste - 1.0),
        compute_seconds=_reduction_seconds_batch(device, nnz + 8.0 * rows, 1.2),
        launches=1,
    )
    cv = batch.row_cv
    packed = _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.82,
        imbalance=1.0 + 0.80 * np.minimum(cv, 4.0),
        compute_seconds=_reduction_seconds_batch(device, nnz * 1.1 + 8.0 * rows, 1.0),
        launches=1,
    )
    # Per-matrix min over the three variants.  np.argmin keeps the first
    # occurrence on ties, matching Python min() over (scalar, vector,
    # packed) in the scalar kernel.
    stacked_seconds = np.stack(
        [scalar["seconds"], vector["seconds"], packed["seconds"]]
    )
    choice = np.argmin(stacked_seconds, axis=0)
    out = {}
    for field in scalar:
        out[field] = np.choose(choice, [scalar[field], vector[field], packed[field]])
    return out


def _ell_batch(batch: ProfileBatch, device: DeviceSpec, precision: str):
    v = _itemsize(precision)
    slots = batch.n_rows * batch.nnz_max
    matrix_bytes = slots * (IDX + v)
    x_bytes = _gather_batch(batch, device, precision)
    y_bytes = batch.n_rows * v
    compute = _reduction_seconds_batch(device, slots.astype(np.float64), 0.8)
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.96,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=1.5,
    )


def _hyb_batch(batch: ProfileBatch, device: DeviceSpec, precision: str):
    v = _itemsize(precision)
    rows = batch.n_rows
    ell_slots = rows * np.minimum(batch.hyb_threshold, batch.nnz_max)
    spill = batch.hyb_spill_nnz
    matrix_bytes = ell_slots * (IDX + v) + spill * (2 * IDX + v)
    x_bytes = _gather_batch(batch, device, precision)
    atomic_eff = device.atomic_efficiency
    if precision == "double" and device.arch == "kepler":
        atomic_eff *= 0.5
    spill_rows = batch.hyb_spill_rows
    y_bytes = rows * v + 2.0 * spill_rows * v / max(atomic_eff, 1e-3)
    compute = _reduction_seconds_batch(device, ell_slots * 0.8 + spill * 2.5, 1.0)
    total_elems = np.maximum(ell_slots + spill, 1)
    efficiency = (0.96 * ell_slots + 0.88 * spill) / total_elems
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=efficiency,
        imbalance=1.0,
        compute_seconds=compute,
        launches=2,
        setup_us=3.0,
    )


def _csr5_batch(batch: ProfileBatch, device: DeviceSpec, precision: str):
    v = _itemsize(precision)
    nnz = batch.nnz
    rows = batch.n_rows
    tile_elems = 32 * 16
    n_tiles = -(-nnz // tile_elems)  # == 0 where nnz == 0, as in the scalar model
    matrix_bytes = (
        nnz * (IDX + v)
        + (rows + 1) * IDX
        + (n_tiles + 1) * IDX
        + n_tiles * 2 * IDX
        + nnz / 8.0
    )
    x_bytes = _gather_batch(batch, device, precision, locality_penalty=1.22)
    y_bytes = rows * v + n_tiles * v
    compute = _reduction_seconds_batch(device, nnz * 1.6 + n_tiles * 96.0, 1.0)
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.94,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=6.0,
    )


def _merge_csr_batch(batch: ProfileBatch, device: DeviceSpec, precision: str):
    v = _itemsize(precision)
    nnz = batch.nnz
    rows = batch.n_rows
    items = nnz + rows
    items_per_thread = 7 * 32
    partitions = -(-items // items_per_thread)
    matrix_bytes = (
        nnz * (IDX + v)
        + (rows + 1) * IDX * 2
        + partitions * 2 * IDX
    )
    x_bytes = _gather_batch(batch, device, precision)
    y_bytes = rows * v + partitions * 2.0 * v
    search_ops = partitions * (np.log2(rows + 1) + 1.0) * 4.0
    compute = _reduction_seconds_batch(device, nnz * 1.3 + rows * 2.5 + search_ops, 1.0)
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.93,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1.5,
        setup_us=5.0,
    )


def _dia_batch(batch: ProfileBatch, device: DeviceSpec, precision: str):
    v = _itemsize(precision)
    rows = batch.n_rows
    n_diags = batch.n_diags
    matrix_bytes = n_diags * rows * v + n_diags * IDX
    x_size = batch.n_cols * v
    resident = np.minimum(1.0, (device.l2_bytes * 0.5) / np.maximum(x_size, 1.0))
    x_bytes = x_size + (1.0 - resident) * np.maximum(n_diags - 1, 0) * rows * v * 0.5
    y_bytes = rows * v
    compute = _reduction_seconds_batch(device, (n_diags * rows).astype(np.float64), 0.6)
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.97,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=0.5,
    )


def _bsr_batch(batch: ProfileBatch, device: DeviceSpec, precision: str):
    v = _itemsize(precision)
    r = c = 4
    n_blocks = batch.bsr_blocks
    n_brows = -(-batch.n_rows // r)
    matrix_bytes = n_blocks * r * c * v + n_blocks * IDX + (n_brows + 1) * IDX
    x_bytes = 0.9 * _gather_batch(batch, device, precision)
    y_bytes = batch.n_rows * v
    compute = _reduction_seconds_batch(device, n_blocks * r * c * 1.0, 1.0)
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.94,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=1.0,
    )


#: Registry: format name -> vectorized cost model (same keys as
#: kernels.KERNEL_MODELS; the equivalence test asserts both stay in sync).
BATCH_KERNEL_MODELS: Dict[
    str, Callable[[ProfileBatch, DeviceSpec, str], Dict[str, np.ndarray]]
] = {
    "coo": _coo_batch,
    "csr": _csr_batch,
    "ell": _ell_batch,
    "hyb": _hyb_batch,
    "csr5": _csr5_batch,
    "merge_csr": _merge_csr_batch,
    "dia": _dia_batch,
    "bsr": _bsr_batch,
}

#: Field names of CostBreakdown, in declaration order.
_BREAKDOWN_FIELDS = (
    "seconds",
    "matrix_bytes",
    "x_bytes",
    "y_bytes",
    "compute_seconds",
    "launch_seconds",
    "imbalance",
    "efficiency",
    "flops",
)


@dataclass(frozen=True)
class CostBreakdownBatch:
    """Cost estimates for N matrices × F formats as ``(N, F)`` arrays.

    Column ``j`` holds the estimates for ``formats[j]``; cell ``(i, j)``
    is bit-identical to the scalar ``estimate_time(formats[j],
    profiles[i], device, precision)``.  Use :meth:`at` to materialise a
    single cell as a plain :class:`CostBreakdown`.
    """

    formats: Tuple[str, ...]
    seconds: np.ndarray
    matrix_bytes: np.ndarray
    x_bytes: np.ndarray
    y_bytes: np.ndarray
    compute_seconds: np.ndarray
    launch_seconds: np.ndarray
    imbalance: np.ndarray
    efficiency: np.ndarray
    flops: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return tuple(self.seconds.shape)

    @property
    def gflops(self) -> np.ndarray:
        """Achieved GFLOP/s per cell (0 where the estimate is 0)."""
        out = np.zeros_like(self.seconds)
        np.divide(self.flops, self.seconds, out=out, where=self.seconds > 0)
        return out / 1e9

    def column(self, fmt: str) -> int:
        """Column index of ``fmt`` (raises ``ValueError`` if absent)."""
        return self.formats.index(fmt)

    def at(self, i: int, fmt: Union[str, int]) -> CostBreakdown:
        """The scalar :class:`CostBreakdown` of matrix ``i`` under ``fmt``."""
        j = self.column(fmt) if isinstance(fmt, str) else fmt
        return CostBreakdown(
            **{name: float(getattr(self, name)[i, j]) for name in _BREAKDOWN_FIELDS}
        )


def _as_batch(
    profiles: Union[ProfileBatch, Sequence[MatrixProfile]]
) -> ProfileBatch:
    if isinstance(profiles, ProfileBatch):
        return profiles
    return ProfileBatch.from_profiles(profiles)


def estimate_batch(
    profiles: Union[ProfileBatch, Sequence[MatrixProfile]],
    formats: Optional[Sequence[str]] = None,
    device: DeviceSpec = None,
    precision: str = "single",
) -> CostBreakdownBatch:
    """Evaluate the cost models for N matrices × F formats in one pass.

    Parameters
    ----------
    profiles:
        A :class:`ProfileBatch` or a sequence of
        :class:`MatrixProfile` objects (packed automatically).
    formats:
        Format names to evaluate (columns of the result, in order).
        Tuning configuration keys (``"hyb?split=2"``) are accepted and
        dispatch to the parameterised models in :mod:`repro.tuning`.
        ``None`` evaluates every registered kernel model.
    device:
        Target :class:`~repro.gpu.device.DeviceSpec` (required).
    precision:
        ``"single"`` or ``"double"``.

    Raises ``KeyError`` for unknown formats and ``ValueError`` for an
    unknown precision, like :func:`~repro.gpu.kernels.estimate_time`.
    """
    if device is None:
        raise TypeError("estimate_batch() requires a device")
    _itemsize(precision)  # validate precision up front
    batch = _as_batch(profiles)
    names = tuple(KERNEL_MODELS) if formats is None else tuple(formats)
    columns = []
    for fmt in names:
        model = BATCH_KERNEL_MODELS.get(fmt)
        if model is not None:
            columns.append(model(batch, device, precision))
            continue
        if "?" in fmt:
            from .. import tuning

            if tuning.is_known_key(fmt):
                columns.append(tuning.batch_columns(fmt, batch, device, precision))
                continue
        raise KeyError(
            f"unknown format {fmt!r}; expected one of {sorted(KERNEL_MODELS)}"
        )
    n, f = len(batch), len(names)
    fields = {
        name: np.empty((n, f), dtype=np.float64) for name in _BREAKDOWN_FIELDS
    }
    for j, col in enumerate(columns):
        for name in _BREAKDOWN_FIELDS:
            fields[name][:, j] = col[name]
    return CostBreakdownBatch(formats=names, **fields)


def format_bytes_batch(
    batch: ProfileBatch, fmt: str, precision: str
) -> np.ndarray:
    """Vectorized analytic device footprint of ``fmt`` per matrix.

    Twin of ``SpMVExecutor._format_bytes``: integer formats stay int64
    so the executor's OOM comparison is exact, CSR5 carries its
    fractional bit-flag term as float64 — matching the scalar types.
    Tuning configuration keys dispatch to the parameterised footprints
    in :mod:`repro.tuning`.
    """
    if "?" in fmt:
        from .. import tuning

        return tuning.config_bytes_batch(batch, fmt, precision)
    v = _itemsize(precision)
    nnz, rows = batch.nnz, batch.n_rows
    if fmt == "coo":
        return nnz * (2 * IDX + v)
    if fmt in ("csr", "merge_csr"):
        return nnz * (IDX + v) + (rows + 1) * IDX
    if fmt == "ell":
        return rows * batch.nnz_max * (IDX + v)
    if fmt == "hyb":
        return (
            rows * np.minimum(batch.hyb_threshold, batch.nnz_max) * (IDX + v)
            + batch.hyb_spill_nnz * (2 * IDX + v)
        )
    if fmt == "csr5":
        return nnz * (IDX + v) + (rows + 1) * IDX + nnz / 8.0
    if fmt == "dia":
        return batch.n_diags * rows * v + batch.n_diags * IDX
    if fmt == "bsr":
        return batch.bsr_blocks * 16 * v + batch.bsr_blocks * IDX
    raise KeyError(fmt)
