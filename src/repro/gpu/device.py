"""Device descriptors for the execution simulator.

The paper's testbeds (Table III) are a Kepler-class Tesla (referred to
as both K40c and K80c in the text) and a Pascal-class Tesla P100.  A
:class:`DeviceSpec` carries the handful of architectural parameters the
SpMV cost models consume; presets reproduce the paper's machines and
users can declare their own.

Beyond the paper's pair, the fleet carries two more presets so the
cross-device selector-transfer question can be asked at all (Chen et
al., "Optimizing SpMV on Emerging Many-Core Architectures", motivates
exactly this roster extension):

* :data:`VOLTA_V100` — a Volta-class Tesla V100 (HBM2, fast atomics),
* :data:`KNL_7250` — a many-core CPU à la Chen et al.'s Knights
  Landing testbed: MCDRAM-class bandwidth, a large distributed L2, no
  GPU-style launch latency but an expensive parallel-region fork, and
  CPU cache-line (64 B) transaction granularity.

SpMV is bandwidth-bound, so the first-order quantities are the DRAM
bandwidth, the L2 capacity available to cache the input vector, and the
latency/occupancy constants that govern how quickly a kernel can reach
streaming speed.  Second-order, architecture-flavoured effects (atomic
throughput for COO-style reductions, kernel launch cost, double-precision
throughput) differentiate the architectures the same way the paper's
measurements do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "DeviceSpec",
    "KEPLER_K40C",
    "PASCAL_P100",
    "VOLTA_V100",
    "KNL_7250",
    "DEVICES",
]

#: Architecture families the kernel models know about.  ``"kepler"``
#: and ``"pascal"`` are the paper's; ``"volta"``/``"ampere"`` are later
#: NVIDIA GPU generations (treated generically, differentiated through
#: the numeric descriptor fields); ``"manycore"`` is a wide-vector CPU
#: (KNL / Phytem-class parts à la Chen et al.).
ARCHS = ("kepler", "pascal", "volta", "ampere", "manycore")


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated GPU.

    Attributes
    ----------
    name:
        Human-readable device name (also the registry key).
    arch:
        Architecture family, one of :data:`ARCHS` (drives a few
        family-specific kernel constants).
    n_sm:
        Number of streaming multiprocessors.
    cores_per_sm:
        FP32 cores per SM.
    clock_mhz:
        Boost clock in MHz.
    mem_bw_gbps:
        Peak DRAM bandwidth, GB/s.
    l2_bytes:
        L2 cache capacity, bytes.
    global_mem_bytes:
        DRAM capacity (used to reject matrices that wouldn't fit, the
        paper excluded ~400 such SuiteSparse matrices).
    cache_line_bytes:
        Granularity of DRAM/L2 transactions.
    warp_size:
        Threads per warp (32 on all NVIDIA parts).
    launch_overhead_us:
        Fixed cost of one kernel launch, microseconds.
    saturation_bytes:
        Streaming-workload size at which DRAM utilisation reaches 50 %
        (the latency-bandwidth product; governs the small-matrix GFLOPS
        ramp seen in the paper's Fig. 3).
    atomic_efficiency:
        Relative throughput of global atomic updates vs plain stores
        (Pascal's atomics are markedly better than Kepler's).
    fp64_throughput_ratio:
        FP64:FP32 arithmetic rate (1/3 on GK110, 1/2 on GP100).
    bw_efficiency:
        Fraction of the peak bandwidth attainable by a perfectly
        coalesced streaming kernel (ECC + DRAM inefficiency).
    dram_pj_per_byte:
        Energy of moving one byte through the DRAM interface, in
        picojoules (first-order energy-proxy coefficient; HBM parts sit
        well below GDDR).
    pj_per_flop:
        Energy of one useful floating-point operation, picojoules.
    static_watts:
        Static/leakage power charged for the kernel's duration, watts
        (board idle draw attributable to a resident kernel).
    """

    name: str
    arch: str
    n_sm: int
    cores_per_sm: int
    clock_mhz: float
    mem_bw_gbps: float
    l2_bytes: int
    global_mem_bytes: int
    cache_line_bytes: int = 128
    warp_size: int = 32
    launch_overhead_us: float = 4.0
    saturation_bytes: float = 1.5e6
    atomic_efficiency: float = 0.5
    fp64_throughput_ratio: float = 0.5
    bw_efficiency: float = 0.80
    dram_pj_per_byte: float = 22.0
    pj_per_flop: float = 8.0
    static_watts: float = 55.0

    def __post_init__(self) -> None:
        if self.arch not in ARCHS:
            raise ValueError(f"unknown arch {self.arch!r}")
        for attr in ("n_sm", "cores_per_sm", "clock_mhz", "mem_bw_gbps",
                     "l2_bytes", "global_mem_bytes"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    # -- derived quantities -------------------------------------------

    @property
    def peak_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes/second."""
        return self.mem_bw_gbps * 1e9

    @property
    def stream_bandwidth(self) -> float:
        """Attainable streaming bandwidth (bytes/s) after ECC losses."""
        return self.peak_bandwidth * self.bw_efficiency

    @property
    def clock_hz(self) -> float:
        """Boost clock in Hz."""
        return self.clock_mhz * 1e6

    def peak_gflops(self, precision: str = "single") -> float:
        """Peak FMA GFLOP/s for the given precision."""
        flops = 2.0 * self.n_sm * self.cores_per_sm * self.clock_hz
        if precision == "double":
            flops *= self.fp64_throughput_ratio
        return flops / 1e9

    @property
    def concurrent_threads(self) -> int:
        """Threads resident at full occupancy (2048/SM on these parts)."""
        return self.n_sm * 2048

    def utilization(self, work_bytes: float) -> float:
        """DRAM utilisation reached by a kernel streaming ``work_bytes``.

        Small kernels cannot cover the memory latency with enough
        in-flight requests; utilisation follows a saturating curve
        ``w / (w + saturation_bytes)`` which reproduces the GFLOPS-vs-nnz
        ramp of real SpMV measurements.
        """
        w = max(float(work_bytes), 0.0)
        return w / (w + self.saturation_bytes)

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **kwargs)


#: The paper's Kepler testbed (Table III quotes 13 SMs / 192 cores/SM /
#: 824 MHz / 12 GB / 1.5 MB L2; GDDR5 bandwidth of the K40-class part).
KEPLER_K40C = DeviceSpec(
    name="Tesla K40c",
    arch="kepler",
    n_sm=13,
    cores_per_sm=192,
    clock_mhz=824.0,
    mem_bw_gbps=288.0,
    l2_bytes=1_572_864,
    global_mem_bytes=12 * 1024**3,
    launch_overhead_us=4.0,
    saturation_bytes=1.2e6,
    atomic_efficiency=0.35,
    fp64_throughput_ratio=1.0 / 3.0,
    bw_efficiency=0.72,
    dram_pj_per_byte=28.0,  # GDDR5
    pj_per_flop=12.0,
    static_watts=70.0,
)

#: The paper's Pascal testbed (56 SMs / 64 cores/SM / 1328 MHz / 16 GB /
#: 4 MB L2, HBM2).
PASCAL_P100 = DeviceSpec(
    name="Tesla P100",
    arch="pascal",
    n_sm=56,
    cores_per_sm=64,
    clock_mhz=1328.0,
    mem_bw_gbps=732.0,
    l2_bytes=4_194_304,
    global_mem_bytes=16 * 1024**3,
    launch_overhead_us=3.0,
    saturation_bytes=2.5e6,
    atomic_efficiency=0.65,
    fp64_throughput_ratio=0.5,
    bw_efficiency=0.78,
    dram_pj_per_byte=10.0,  # HBM2
    pj_per_flop=7.0,
    static_watts=60.0,
)

#: A Volta-class Tesla V100 (80 SMs / 64 cores/SM / 1530 MHz / 16 GB /
#: 6 MB L2, HBM2).  Volta's independent thread scheduling and much
#: faster global atomics narrow the COO/HYB penalty relative to the
#: paper's parts; the larger L2 widens the DIA/BSR locality window.
VOLTA_V100 = DeviceSpec(
    name="Tesla V100",
    arch="volta",
    n_sm=80,
    cores_per_sm=64,
    clock_mhz=1530.0,
    mem_bw_gbps=900.0,
    l2_bytes=6_291_456,
    global_mem_bytes=16 * 1024**3,
    launch_overhead_us=2.5,
    saturation_bytes=3.2e6,
    atomic_efficiency=0.75,
    fp64_throughput_ratio=0.5,
    bw_efficiency=0.82,
    dram_pj_per_byte=9.0,  # HBM2
    pj_per_flop=6.0,
    static_watts=65.0,
)

#: A many-core CPU descriptor à la Chen et al.'s Knights Landing
#: testbed (Xeon Phi 7250: 68 cores, AVX-512 so 16 FP32 lanes/core,
#: 1.4 GHz, 16 GB MCDRAM at ~490 GB/s, 34 MB distributed L2).  CPU
#: transactions move 64-byte cache lines; there is no kernel-launch
#: latency but forking a parallel region costs ~8 µs; global atomics
#: through the mesh are far slower than on a GPU.
KNL_7250 = DeviceSpec(
    name="Xeon Phi 7250",
    arch="manycore",
    n_sm=68,
    cores_per_sm=16,
    clock_mhz=1400.0,
    mem_bw_gbps=490.0,
    l2_bytes=34 * 1024**2,
    global_mem_bytes=16 * 1024**3,
    cache_line_bytes=64,
    launch_overhead_us=8.0,
    saturation_bytes=0.8e6,
    atomic_efficiency=0.20,
    fp64_throughput_ratio=0.5,
    bw_efficiency=0.85,
    dram_pj_per_byte=15.0,  # MCDRAM
    pj_per_flop=9.0,
    static_watts=90.0,
)

#: Registry of preset devices, keyed by short alias.
DEVICES: Dict[str, DeviceSpec] = {
    "k40c": KEPLER_K40C,
    "k80c": KEPLER_K40C,  # the paper uses both names for its Kepler box
    "p100": PASCAL_P100,
    "v100": VOLTA_V100,
    "knl": KNL_7250,
}
