"""Deprecation machinery: warn-once shims for superseded entry points.

Old spellings stay importable and fully functional, but the first call
of each emits a single :class:`DeprecationWarning` naming the new
spelling; later calls are silent (one warning per process per shim, so
a tight loop over a deprecated helper cannot flood the log).  Tests use
:func:`reset_warning_registry` to re-arm the warnings.
"""

from __future__ import annotations

import functools
import threading
import warnings
from typing import Callable, Set

__all__ = ["deprecated", "reset_warning_registry", "warn_deprecated"]

_lock = threading.Lock()
_warned: Set[str] = set()


def warn_deprecated(key: str, message: str) -> None:
    """Emit ``message`` as a DeprecationWarning, once per ``key``."""
    with _lock:
        if key in _warned:
            return
        _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def deprecated(replacement: str, *, key: str = "") -> Callable:
    """Mark a callable as a shim for ``replacement``.

    The wrapped function forwards unchanged; ``replacement`` is the new
    spelling shown in the warning (e.g. ``"ReproConfig.from_env().scale"``).
    """

    def decorate(fn: Callable) -> Callable:
        warn_key = key or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def shim(*args, **kwargs):
            warn_deprecated(
                warn_key,
                f"{fn.__qualname__}() is deprecated; use {replacement} instead",
            )
            return fn(*args, **kwargs)

        shim.__deprecated__ = replacement
        return shim

    return decorate


def reset_warning_registry() -> None:
    """Re-arm every warn-once shim (test support)."""
    with _lock:
        _warned.clear()
