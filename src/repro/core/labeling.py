"""Ground-truth label collection (paper Sec. IV-B).

The paper's protocol: execute every (matrix, format) pair 50 times,
average the execution time, and label each matrix with the format of
minimum mean time (equivalently maximum GFLOPS).  Matrices that fail
for any format under study (OOM, ELL padding blow-up) are dropped, as
the paper dropped ~400 of its 2700 SuiteSparse matrices.

Sec. V-A's COO rule is also implemented: matrices whose best format is
COO are removed from the classification study (COO wins are rare and
always near-ties, so the performance loss of excluding it is minimal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..features import extract_features
from ..formats import FORMAT_NAMES, SparseFormat
from ..gpu import MatrixProfile, SpMVExecutor
from ..gpu.kernels import KERNEL_MODELS

from ..config import DEFAULT_REPS  # noqa: F401  (canonical home: repro.config)

__all__ = ["MatrixLabel", "label_matrix", "DEFAULT_REPS"]


@dataclass(frozen=True)
class MatrixLabel:
    """Ground truth for one matrix on one (device, precision).

    Attributes
    ----------
    name:
        Corpus name of the matrix.
    features:
        The 17 structural features (see :mod:`repro.features`).
    times:
        Mean execution seconds per format (only formats that ran).
    gflops:
        Achieved GFLOP/s per format.
    best_format:
        Format with minimum mean time.
    failed:
        Formats that could not execute, with the failure reason.
    """

    name: str
    features: Dict[str, float]
    times: Dict[str, float]
    gflops: Dict[str, float]
    best_format: str
    failed: Dict[str, str]

    @property
    def complete(self) -> bool:
        """True when every requested format executed successfully."""
        return not self.failed

    def slowdown(self, fmt: str) -> float:
        """Penalty of choosing ``fmt`` instead of the best format.

        A format that failed to execute is infinitely worse than the
        best one, so it reports ``float("inf")`` rather than raising.
        Formats that were never requested still raise ``KeyError``.
        """
        if fmt in self.failed:
            return float("inf")
        return self.times[fmt] / self.times[self.best_format]


def label_matrix(
    executor: SpMVExecutor,
    matrix: SparseFormat,
    *,
    name: str = "",
    formats: Sequence[str] = FORMAT_NAMES,
    reps: int = DEFAULT_REPS,
    features: Optional[Dict[str, float]] = None,
    profile: Optional[MatrixProfile] = None,
) -> MatrixLabel:
    """Benchmark all ``formats`` on ``matrix`` and derive its label.

    Parameters
    ----------
    executor:
        The simulated device/precision to measure on.
    matrix:
        Any sparse format instance.
    name:
        Corpus name recorded in the label.
    formats:
        Formats under study (Tables IV–VI use the basic three,
        Tables VII+ all six).
    reps:
        Repetitions to average (paper: 50).
    features, profile:
        Optionally pre-computed features/profile to avoid re-scanning.

    Raises
    ------
    ValueError
        If *no* requested format could execute.
    """
    if profile is None and features is None:
        # One shared structural scan yields both (see repro.analysis).
        analysis = executor.analyze(matrix)
        prof, feats = analysis.profile, analysis.features
    else:
        prof = profile if profile is not None else executor.profile(matrix)
        feats = features if features is not None else extract_features(matrix)
    times: Dict[str, float] = {}
    gflops: Dict[str, float] = {}
    failed: Dict[str, str] = {}
    # One vectorized sweep covers every known format: feasibility, cost
    # models and noise sampling run batched instead of per-format calls,
    # with bit-identical results (and identical failure strings) to the
    # historical benchmark loop.  Tuning configuration keys
    # ("hyb?split=2") count as known formats — the batch sweep
    # dispatches them to the parameterised models.
    def _known(fmt: str) -> bool:
        if fmt in KERNEL_MODELS:
            return True
        if "?" in fmt:
            from .. import tuning

            return tuning.is_known_key(fmt)
        return False

    known = [fmt for fmt in formats if _known(fmt)]
    for fmt in formats:
        if not _known(fmt):  # mirrors the per-call KeyError label
            failed[fmt] = f"KeyError: {fmt!r}"
    sweep = executor.benchmark_batch([prof], formats=tuple(known), reps=reps)[0]
    for fmt in known:
        sample = sweep[fmt]
        if sample is None:  # simulated OOM / kernel failure
            failed[fmt] = str(sweep.failures[fmt])
            continue
        times[fmt] = sample.seconds
        gflops[fmt] = sample.gflops
    failed = {fmt: failed[fmt] for fmt in formats if fmt in failed}
    if not times:
        raise ValueError(f"matrix {name!r}: every format failed: {failed}")
    best = min(times, key=times.get)
    return MatrixLabel(
        name=name,
        features=feats,
        times=times,
        gflops=gflops,
        best_format=best,
        failed=failed,
    )
