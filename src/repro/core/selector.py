"""Direct format selection: the paper's classification models.

:class:`FormatSelector` wraps one of the paper's four model families —
decision tree, multiclass SVM, MLP, XGBoost — behind one interface:

>>> selector = FormatSelector("xgboost", feature_set="set12")   # doctest: +SKIP
>>> selector.fit(dataset)                                       # doctest: +SKIP
>>> selector.predict_formats(test_features)                     # doctest: +SKIP

Scale-sensitive models (SVM, MLP) are automatically wrapped in the
log1p + standardise pipeline; trees/boosting consume raw features.
Hyper-parameter defaults follow Sec. IV-D, and :func:`tuned_selector`
reproduces the paper's GridSearchCV sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..features import FEATURE_SETS
from ..ml import (
    SVC,
    BaseEstimator,
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    GridSearchCV,
    Log1pTransformer,
    MLPClassifier,
    MLPEnsembleClassifier,
    Pipeline,
    StandardScaler,
    accuracy_score,
    clone,
)
from .dataset import SpMVDataset

__all__ = ["FormatSelector", "MODEL_REGISTRY", "PAPER_GRIDS", "tuned_selector"]


def _as_batch(X) -> np.ndarray:
    """Coerce prediction input to ``(n_samples, n_features)``.

    A single 1-D feature vector — the natural shape of one serving
    request — is auto-reshaped to a one-row batch instead of failing
    the 2-D check downstream.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[None, :]
    return X


def _scaled(estimator: BaseEstimator) -> Pipeline:
    """Wrap a scale-sensitive model in log1p + standardisation."""
    return Pipeline(
        [
            ("log", Log1pTransformer()),
            ("scale", StandardScaler()),
            ("model", estimator),
        ]
    )


def _make_decision_tree(**kw) -> BaseEstimator:
    return DecisionTreeClassifier(**{"max_depth": 12, **kw})


def _make_svm(**kw) -> BaseEstimator:
    return _scaled(SVC(**{"C": 100.0, "gamma": 0.1, **kw}))


def _make_mlp(**kw) -> BaseEstimator:
    # The paper's topology: 96-48-16 hidden neurons, batch size 16.
    return _scaled(
        MLPClassifier(
            **{
                "hidden_layer_sizes": (96, 48, 16),
                "batch_size": 16,
                "n_epochs": 150,
                **kw,
            }
        )
    )


def _make_mlp_ensemble(**kw) -> BaseEstimator:
    return _scaled(
        MLPEnsembleClassifier(
            **{
                "n_members": 5,
                "hidden_layer_sizes": (96, 48, 16),
                "batch_size": 16,
                "n_epochs": 120,
                **kw,
            }
        )
    )


def _make_xgboost(**kw) -> BaseEstimator:
    # Depth-4 + min_child_weight=2 + row subsampling keep the booster
    # honest on the few hundred training matrices of CI-scale runs while
    # matching the paper-scale accuracy of deeper settings.
    return GradientBoostingClassifier(
        **{
            "n_estimators": 150,
            "max_depth": 4,
            "learning_rate": 0.1,
            "min_child_weight": 1.0,
            "subsample": 0.9,
            **kw,
        }
    )


#: Model factories, keyed by the paper's model names.
MODEL_REGISTRY = {
    "decision_tree": _make_decision_tree,
    "svm": _make_svm,
    "mlp": _make_mlp,
    "mlp_ensemble": _make_mlp_ensemble,
    "xgboost": _make_xgboost,
}

#: The paper's Sec. IV-D GridSearchCV ranges (trimmed depths: the quoted
#: 32–128 exceed what 17 features can use; 6–12 realises the same trees).
PAPER_GRIDS = {
    "xgboost": {
        "n_estimators": [50, 100, 200],
        "max_depth": [4, 6, 10],
        "learning_rate": [0.1, 0.01],
    },
    "svm": {
        # Applied to the final pipeline step via tuned_selector.
        "C": [100.0, 1000.0, 10000.0],
        "gamma": [0.1, 0.01, 0.001],
    },
}


class FormatSelector:
    """Best-format classifier over a fixed feature set.

    Parameters
    ----------
    model:
        A :data:`MODEL_REGISTRY` key or a ready estimator instance.
    feature_set:
        One of ``"set1"``, ``"set12"``, ``"set123"``, ``"imp"`` or an
        explicit feature-name sequence (paper Tables IV–X sweep these).
    **model_kwargs:
        Overrides forwarded to the registry factory.
    """

    def __init__(
        self,
        model: Union[str, BaseEstimator] = "xgboost",
        *,
        feature_set: Union[str, Sequence[str]] = "set123",
        **model_kwargs,
    ) -> None:
        if isinstance(model, str):
            try:
                self.estimator = MODEL_REGISTRY[model](**model_kwargs)
            except KeyError:
                raise ValueError(
                    f"unknown model {model!r}; expected one of {sorted(MODEL_REGISTRY)}"
                ) from None
            self.model_name = model
        else:
            self.estimator = model
            self.model_name = type(model).__name__
        if isinstance(feature_set, str) and feature_set not in FEATURE_SETS:
            raise ValueError(
                f"unknown feature set {feature_set!r}; expected {sorted(FEATURE_SETS)}"
            )
        self.feature_set = feature_set

    # -- fitting ----------------------------------------------------------

    def fit(
        self,
        data: Union[SpMVDataset, np.ndarray],
        y: Optional[np.ndarray] = None,
    ) -> "FormatSelector":
        """Fit on a dataset (uses its labels) or a raw (X, y) pair."""
        if isinstance(data, SpMVDataset):
            self.formats_ = data.formats
            X = data.X(self.feature_set)
            y = data.labels
        else:
            if y is None:
                raise ValueError("y is required when fitting on a raw array")
            self.formats_ = None
            X = np.asarray(data)
        self.estimator.fit(X, np.asarray(y))
        return self

    @property
    def supports_warm_start(self) -> bool:
        """Whether the wrapped estimator can continue training in place.

        True for the MLP and boosting families (single or pipeline-
        wrapped); trees and SVMs retrain from scratch instead.
        """
        est = self.estimator
        if isinstance(est, Pipeline):
            est = est.steps[-1][1]
        return hasattr(est, "warm_fit")

    def warm_fit(
        self,
        data: Union[SpMVDataset, np.ndarray],
        y: Optional[np.ndarray] = None,
        **kw,
    ) -> "FormatSelector":
        """Continue training the fitted estimator on new rows (in place).

        The online-learning entry point: accumulated serving feedback
        becomes extra training rows without a cold refit.  Requires a
        warm-startable model family (see :attr:`supports_warm_start`)
        and — for dataset inputs — the format vocabulary the selector
        was fitted with.  Extra keyword arguments (e.g. ``n_epochs``,
        ``n_rounds``) reach the estimator's ``warm_fit``.
        """
        if not self.supports_warm_start:
            raise ValueError(
                f"model {self.model_name!r} does not support warm-start "
                "training; refit from scratch instead"
            )
        if isinstance(data, SpMVDataset):
            fitted = getattr(self, "formats_", None)
            if fitted is not None and tuple(data.formats) != tuple(fitted):
                raise ValueError(
                    f"warm_fit dataset formats {tuple(data.formats)} do not "
                    f"match the fitted vocabulary {tuple(fitted)}"
                )
            X = data.X(self.feature_set)
            y = data.labels
        else:
            if y is None:
                raise ValueError("y is required when warm-fitting on a raw array")
            X = np.asarray(data)
        self.estimator.warm_fit(X, np.asarray(y), **kw)
        return self

    # -- prediction ---------------------------------------------------------

    def predict(self, data: Union[SpMVDataset, np.ndarray]) -> np.ndarray:
        """Predict best-format *indices* (accepts a single 1-D vector)."""
        X = data.X(self.feature_set) if isinstance(data, SpMVDataset) else _as_batch(data)
        return self.estimator.predict(X)

    def predict_formats(self, data: Union[SpMVDataset, np.ndarray]) -> np.ndarray:
        """Predict best-format *names* (requires dataset-fitted selector).

        When the selector was fitted over a joint format+parameter
        space (see :mod:`repro.tuning`), the "names" are configuration
        keys (``"csr?lanes=8"``); use :meth:`predict_configs` for the
        structured view.
        """
        if self.formats_ is None:
            raise RuntimeError("selector was fitted on raw arrays; format names unknown")
        return np.array(self.formats_)[self.predict(data)]

    def predict_configs(self, data: Union[SpMVDataset, np.ndarray]) -> list:
        """Predict best configurations (requires dataset-fitted selector).

        Returns one :class:`repro.tuning.Configuration` per sample —
        the structured counterpart of :meth:`predict_formats`.  Bare
        format names in the vocabulary map to that format's all-default
        configuration.
        """
        from .. import tuning

        return [tuning.Configuration.from_key(k) for k in self.predict_formats(data)]

    def score(self, data: Union[SpMVDataset, np.ndarray], y: Optional[np.ndarray] = None) -> float:
        """Classification accuracy on a dataset or (X, y) pair."""
        if isinstance(data, SpMVDataset):
            y = data.labels
        if y is None:
            raise ValueError("y is required when scoring on a raw array")
        return accuracy_score(np.asarray(y), self.predict(data))

    # -- the stable estimator surface --------------------------------------

    def get_params(self) -> dict:
        """Constructor arguments as a dict (the estimator protocol)."""
        return {"model": self.model_name, "feature_set": self.feature_set}

    def save(self, path) -> None:
        """Serialise this fitted selector to one ``.npz`` artifact.

        The payload format matches what the versioned model registry
        (:mod:`repro.serve.registry`) stores, minus the metadata
        sidecar; :meth:`load` reads it back bit-identically.
        """
        from ..ml.serialize import save_payload

        save_payload({"kind": "selector", "wrapper": self.get_state()}, path)

    @classmethod
    def load(cls, path) -> "FormatSelector":
        """Load a selector saved by :meth:`save`."""
        from ..ml.serialize import SerializationError, load_payload

        payload = load_payload(path)
        if not isinstance(payload, dict) or payload.get("kind") != "selector":
            raise SerializationError(
                f"artifact {path} does not hold a FormatSelector"
            )
        return cls.from_state(payload["wrapper"])

    # -- persistence (model-registry support) -----------------------------

    def get_state(self) -> dict:
        """Fitted state for the :mod:`repro.serve` registry codec."""
        return {
            "model_name": self.model_name,
            "feature_set": self.feature_set,
            "formats": None if getattr(self, "formats_", None) is None
            else list(self.formats_),
            "estimator": self.estimator,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FormatSelector":
        """Rebuild a fitted selector from :meth:`get_state` output."""
        sel = cls.__new__(cls)
        sel.model_name = state["model_name"]
        fs = state["feature_set"]
        sel.feature_set = fs if isinstance(fs, str) else tuple(fs)
        sel.formats_ = None if state["formats"] is None else tuple(state["formats"])
        sel.estimator = state["estimator"]
        return sel


def tuned_selector(
    model: str,
    train: SpMVDataset,
    *,
    feature_set: Union[str, Sequence[str]] = "set123",
    cv: int = 5,
    seed: int = 0,
    grid: Optional[Dict] = None,
) -> FormatSelector:
    """GridSearchCV-tuned selector, reproducing the paper's Sec. IV-D sweep.

    For pipeline models the grid applies to the final step's
    hyper-parameters.  Models without a paper grid fall back to their
    registry defaults.
    """
    selector = FormatSelector(model, feature_set=feature_set)
    grid = grid if grid is not None else PAPER_GRIDS.get(model)
    if not grid:
        return selector.fit(train)

    X, y = train.X(feature_set), train.labels
    base = selector.estimator
    if isinstance(base, Pipeline):
        # Re-wrap: search over the final estimator inside a fresh pipeline.
        final = base.steps[-1][1]

        class _PipelineFactory(Pipeline):
            pass

        best_score, best_params = -np.inf, None
        import itertools

        names = list(grid)
        from ..ml.model_selection import cross_val_score

        for combo in itertools.product(*(grid[n] for n in names)):
            params = dict(zip(names, combo))
            candidate = _scaled(clone(final).set_params(**params))
            scores = cross_val_score(candidate, X, y, cv=cv, seed=seed)
            if scores.mean() > best_score:
                best_score, best_params = scores.mean(), params
        selector.estimator = _scaled(clone(final).set_params(**best_params))
        selector.tuned_params_ = best_params
    else:
        gs = GridSearchCV(base, grid, cv=cv, seed=seed)
        gs.fit(X, y)
        selector.estimator = gs.best_estimator_
        selector.tuned_params_ = gs.best_params_
    selector.formats_ = train.formats
    # Final refit on the full training data happens inside fit(); GridSearchCV
    # already refits non-pipeline models, but fit() keeps behaviour uniform.
    selector.fit(train)
    return selector
