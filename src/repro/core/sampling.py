"""Sampling-based adaptive format selection (Zardoshti et al. baseline).

The paper's related work (Sec. VII) describes an alternative to ML
selection: *execute a small portion of the input matrix* in every
candidate format and keep the winner.  This module implements that
baseline so the benches can quantify the trade-off the paper implies —
the adaptive probe needs no training at all, but its selection cost is
format-count × probe-benchmark instead of one feature pass + model
inference, and a small sample can misjudge formats whose behaviour is
driven by global structure (ELL's padding is decided by the single
longest row, which a row sample easily misses).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..formats import FORMAT_NAMES, COOMatrix, SparseFormat
from ..gpu import SimulationError, SpMVExecutor

__all__ = ["SamplingSelector", "sample_rows"]


def sample_rows(matrix: SparseFormat, fraction: float, *, seed: int = 0) -> COOMatrix:
    """A contiguous row-block sample of ``matrix``.

    Keeps the full column space (the x-gather behaviour must survive)
    and a contiguous block of ``ceil(fraction * rows)`` rows starting at
    a seeded offset — the sampling strategy of the adaptive-runtime
    literature, cheap to slice from CSR.
    The sampled block keeps its own row count, so per-row statistics
    (and therefore format behaviour) are preserved at scale.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    coo = matrix.to_coo()
    n_rows = coo.n_rows
    take = max(1, int(np.ceil(fraction * n_rows)))
    if take >= n_rows:
        return coo
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, n_rows - take + 1))
    keep = (coo.row >= start) & (coo.row < start + take)
    return COOMatrix(
        (take, coo.n_cols),
        coo.row[keep] - start,
        coo.col[keep],
        coo.val[keep],
        canonical=False,
    )


class SamplingSelector:
    """Pick the format that wins on a small sample of the matrix.

    Parameters
    ----------
    executor:
        The (simulated) device to probe on.
    fraction:
        Row fraction to sample (the literature uses 1–10 %).
    probe_reps:
        Benchmark repetitions per probe (small — the probe must be
        cheap, that is its selling point).
    formats:
        Candidate formats.
    seed:
        Sample-placement seed.
    """

    def __init__(
        self,
        executor: SpMVExecutor,
        *,
        fraction: float = 0.05,
        probe_reps: int = 3,
        formats: Sequence[str] = FORMAT_NAMES,
        seed: int = 0,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if probe_reps < 1:
            raise ValueError("probe_reps must be >= 1")
        self.executor = executor
        self.fraction = float(fraction)
        self.probe_reps = int(probe_reps)
        self.formats = tuple(formats)
        self.seed = int(seed)

    def probe(self, matrix: SparseFormat) -> Dict[str, Optional[float]]:
        """Sampled per-format probe timings (``None`` = probe failed)."""
        sample = sample_rows(matrix, self.fraction, seed=self.seed)
        out: Dict[str, Optional[float]] = {}
        for fmt in self.formats:
            try:
                out[fmt] = self.executor.benchmark(
                    sample, fmt, reps=self.probe_reps
                ).seconds
            except SimulationError:
                out[fmt] = None
        return out

    def predict_format(self, matrix: SparseFormat) -> str:
        """The format winning the sampled probe."""
        times = {f: t for f, t in self.probe(matrix).items() if t is not None}
        if not times:
            raise RuntimeError("every format failed on the sample")
        return min(times, key=times.get)

    def probe_cost_seconds(self, matrix: SparseFormat) -> float:
        """Total simulated device time the probe itself consumes."""
        total = 0.0
        for t in self.probe(matrix).values():
            if t is not None:
                total += t * self.probe_reps
        return total
