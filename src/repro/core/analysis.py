"""Result analysis: feature importance, slowdown tables, penalties.

Implements the paper's "in-depth analysis" artefacts:

* XGBoost feature-importance rankings (Figs. 4–5) and the derived
  top-k "imp." feature subset (Sec. V-D),
* misprediction slowdown histograms (Tables XI–XIII),
* per-matrix misprediction penalties.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..features import FEATURE_SETS
from ..ml import GradientBoostingClassifier, slowdown_factors, slowdown_histogram
from .dataset import SpMVDataset
from .selector import FormatSelector

__all__ = [
    "feature_importance_ranking",
    "top_k_features",
    "misprediction_slowdowns",
    "slowdown_table_row",
]


def feature_importance_ranking(
    data: SpMVDataset,
    *,
    feature_set: str = "set123",
    n_estimators: int = 120,
    max_depth: int = 6,
    seed: int = 0,
) -> List[Tuple[str, int]]:
    """XGBoost F-score ranking of features (paper Figs. 4–5).

    Trains a gradient-boosted classifier on the full dataset and
    returns ``(feature, f_score)`` pairs sorted descending, where the
    F-score is the number of tree splits that used the feature —
    exactly the statistic the paper plots.
    """
    names = FEATURE_SETS[feature_set]
    clf = GradientBoostingClassifier(
        n_estimators=n_estimators, max_depth=max_depth, seed=seed
    )
    clf.fit(data.X(feature_set), data.labels)
    pairs = sorted(zip(names, clf.f_scores_), key=lambda p: -p[1])
    return [(name, int(score)) for name, score in pairs]


def top_k_features(
    data: SpMVDataset, k: int = 7, *, feature_set: str = "set123", seed: int = 0
) -> Tuple[str, ...]:
    """The top-``k`` features by XGBoost F-score (the paper's "imp." set)."""
    ranking = feature_importance_ranking(data, feature_set=feature_set, seed=seed)
    return tuple(name for name, _ in ranking[:k])


def misprediction_slowdowns(
    selector: FormatSelector, test: SpMVDataset
) -> np.ndarray:
    """Per-test-matrix slowdown of the selector's chosen format (≥ 1)."""
    pred = selector.predict(test)
    return slowdown_factors(test.times, test.labels, pred)


def slowdown_table_row(
    selector: FormatSelector, test: SpMVDataset
) -> Dict[str, int]:
    """One row of Tables XI–XIII: the slowdown-case histogram."""
    return slowdown_histogram(misprediction_slowdowns(selector, test))
