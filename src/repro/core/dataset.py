"""Dataset assembly: corpus → (features, labels, times) arrays.

:func:`build_dataset` runs the labeling protocol over a corpus on one
simulated device/precision and packs the result into an
:class:`SpMVDataset` — the object every experiment in the paper's
evaluation consumes.  Datasets serialise to ``.npz`` so the expensive
labeling pass can be cached between benchmark tables (all the paper's
tables reuse one measurement campaign per device/precision).

The measurement loop itself lives in :mod:`repro.bench.campaign`;
:func:`build_dataset` is a thin wrapper that adds whole-dataset
``.npz`` caching on top of the engine's parallel, fault-tolerant,
shard-resumable execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import ReproConfig
from ..features import ALL_FEATURES, FEATURE_SETS
from ..formats import FORMAT_NAMES
from ..gpu import DeviceSpec, NoiseModel
from ..matrices import SyntheticCorpus
from .labeling import DEFAULT_REPS

__all__ = ["SpMVDataset", "build_dataset"]


@dataclass
class SpMVDataset:
    """Labeled SpMV measurement campaign over a corpus.

    Attributes
    ----------
    names:
        Matrix names, length ``n``.
    feature_array:
        ``(n, 17)`` feature matrix in :data:`repro.features.ALL_FEATURES`
        order.
    times:
        ``(n, n_formats)`` mean execution seconds.
    formats:
        Format names defining the column order of ``times``.
    labels:
        Best-format index per matrix (argmin of ``times``).
    device, precision:
        Provenance of the measurements.
    reps:
        Repetition count of the measurement campaign (``0`` for legacy
        datasets saved before the count was recorded).
    """

    names: List[str]
    feature_array: np.ndarray
    times: np.ndarray
    formats: Tuple[str, ...]
    device: str
    precision: str
    reps: int = 0

    def __post_init__(self) -> None:
        n = len(self.names)
        if self.feature_array.shape != (n, len(ALL_FEATURES)):
            raise ValueError("feature_array shape mismatch")
        if self.times.shape != (n, len(self.formats)):
            raise ValueError("times shape mismatch")

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.names)

    @property
    def labels(self) -> np.ndarray:
        """Best-format index per matrix."""
        return np.argmin(self.times, axis=1)

    @property
    def label_names(self) -> np.ndarray:
        """Best-format name per matrix."""
        return np.array(self.formats)[self.labels]

    @property
    def gflops(self) -> np.ndarray:
        """Achieved GFLOP/s per (matrix, format)."""
        nnz = self.feature_array[:, ALL_FEATURES.index("nnz_tot")]
        return 2.0 * nnz[:, None] / self.times / 1e9

    def X(self, feature_set: Union[str, Sequence[str]] = "set123") -> np.ndarray:
        """Feature matrix restricted to a named set or explicit list.

        ``feature_set`` may be one of :data:`repro.features.FEATURE_SETS`
        keys (``"set1"``, ``"set12"``, ``"set123"``, ``"imp"``) or an
        explicit sequence of feature names.
        """
        names = FEATURE_SETS[feature_set] if isinstance(feature_set, str) else feature_set
        idx = [ALL_FEATURES.index(f) for f in names]
        return self.feature_array[:, idx]

    def subset(self, mask: np.ndarray) -> "SpMVDataset":
        """Row-subset of the dataset (boolean mask or index array)."""
        mask = np.asarray(mask)
        idx = np.flatnonzero(mask) if mask.dtype == bool else mask
        return SpMVDataset(
            names=[self.names[i] for i in idx],
            feature_array=self.feature_array[idx],
            times=self.times[idx],
            formats=self.formats,
            device=self.device,
            precision=self.precision,
            reps=self.reps,
        )

    def restrict_formats(self, formats: Sequence[str]) -> "SpMVDataset":
        """Project onto a format subset (e.g. the basic ELL/CSR/HYB study)."""
        cols = [self.formats.index(f) for f in formats]
        return SpMVDataset(
            names=list(self.names),
            feature_array=self.feature_array,
            times=self.times[:, cols],
            formats=tuple(formats),
            device=self.device,
            precision=self.precision,
            reps=self.reps,
        )

    def drop_coo_best(self) -> "SpMVDataset":
        """Apply the paper's Sec. V-A rule: drop matrices where COO wins."""
        if "coo" not in self.formats:
            return self
        coo_idx = self.formats.index("coo")
        return self.subset(self.labels != coo_idx)

    # -- persistence ---------------------------------------------------------

    def digest(self) -> str:
        """Content digest (sha256 hex) of the full labeled dataset.

        Stable across save/load round-trips; the model registry records
        it so every artifact names the exact training data it saw.
        """
        import hashlib

        h = hashlib.sha256()
        h.update("\x1f".join(self.names).encode())
        h.update(np.ascontiguousarray(self.feature_array, dtype=np.float64).tobytes())
        h.update(np.ascontiguousarray(self.times, dtype=np.float64).tobytes())
        h.update(",".join(self.formats).encode())
        h.update(f"|{self.device}|{self.precision}|{self.reps}".encode())
        return h.hexdigest()

    def save(self, path: Union[str, Path]) -> None:
        """Serialise to ``.npz``."""
        np.savez_compressed(
            path,
            names=np.array(self.names),
            feature_array=self.feature_array,
            times=self.times,
            formats=np.array(self.formats),
            device=self.device,
            precision=self.precision,
            reps=self.reps,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SpMVDataset":
        """Load a dataset saved by :meth:`save`."""
        with np.load(path, allow_pickle=False) as z:
            return cls(
                names=[str(s) for s in z["names"]],
                feature_array=z["feature_array"],
                times=z["times"],
                formats=tuple(str(s) for s in z["formats"]),
                device=str(z["device"]),
                precision=str(z["precision"]),
                reps=int(z["reps"]) if "reps" in z.files else 0,
            )


def build_dataset(
    corpus: SyntheticCorpus,
    device: DeviceSpec,
    precision: str = "single",
    *,
    formats: Sequence[str] = FORMAT_NAMES,
    reps: int = DEFAULT_REPS,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
    cache_path: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
    shard_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Callable] = None,
    config: Optional[ReproConfig] = None,
) -> SpMVDataset:
    """Label a whole corpus on one simulated device/precision.

    Thin wrapper over the measurement-campaign engine
    (:func:`repro.bench.campaign.run_campaign`): the per-matrix labeling
    loop fans out over ``workers`` processes (default: ``config.workers``
    when a :class:`~repro.config.ReproConfig` is given, else the
    ``REPRO_WORKERS`` environment variable, falling back to serial),
    per-matrix failures are recorded and skipped, and ``shard_dir``
    makes interrupted campaigns resumable.  Results are bit-identical
    for any worker count (each matrix draws from its own derived seed).

    Matrices failing any requested format are dropped (the paper's
    protocol).  If ``cache_path`` exists *and matches* the requested
    formats, precision, device and reps, it is loaded instead of
    re-measuring; on any mismatch — or after a fresh build — the
    dataset is rebuilt and saved there.  (Datasets saved before the
    repetition count was recorded report ``reps == 0`` and are accepted
    for any ``reps``.)
    """
    if cache_path is not None and Path(cache_path).exists():
        ds = SpMVDataset.load(cache_path)
        if (
            ds.formats == tuple(formats)
            and ds.precision == precision
            and ds.device == device.name
            and ds.reps in (0, reps)
        ):
            return ds

    from ..bench.campaign import run_campaign

    result = run_campaign(
        corpus,
        device,
        precision,
        formats=formats,
        reps=reps,
        noise=noise,
        seed=seed,
        workers=workers,
        shard_dir=shard_dir,
        progress=progress,
        config=config,
    )
    ds = result.to_dataset()
    if cache_path is not None:
        Path(cache_path).parent.mkdir(parents=True, exist_ok=True)
        ds.save(cache_path)
    return ds
