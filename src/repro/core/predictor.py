"""SpMV performance modeling: execution-time regression (paper Sec. VI).

Two modes, matching the paper's two experiments:

* **joint** (Sec. VI-A) — a single regressor over all formats, the
  format being an extra one-hot input block; one model predicts the
  time of any (matrix, format) pair.
* **per-format** (Sec. VI-B) — an independent regressor per format.

Targets are regressed in log-space (execution times span six decades)
and exponentiated on prediction; RME is always computed in linear
space, as the paper defines it.

Both modes treat the dataset's format vocabulary as opaque column
names, so they extend unchanged to the joint format+parameter space of
:mod:`repro.tuning`: train on a campaign labeled over
``tuning.tuned_space()`` and each configuration key
(``"csr?lanes=8"``) gets its own one-hot slot (joint mode) or
regression head (per-format mode).
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from .._compat import deprecated
from ..ml import (
    BaseEstimator,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    Log1pTransformer,
    MLPEnsembleRegressor,
    MLPRegressor,
    Pipeline,
    StandardScaler,
    SVR,
    clone,
    relative_mean_error,
)
from .dataset import SpMVDataset
from .selector import _as_batch

__all__ = ["PerformancePredictor", "REGRESSOR_REGISTRY"]


def _scaled(est: BaseEstimator) -> Pipeline:
    return Pipeline(
        [("log", Log1pTransformer()), ("scale", StandardScaler()), ("model", est)]
    )


def _make_mlp(**kw) -> BaseEstimator:
    return _scaled(
        MLPRegressor(
            **{
                "hidden_layer_sizes": (96, 48, 16),
                "batch_size": 16,
                "n_epochs": 200,
                **kw,
            }
        )
    )


def _make_mlp_ensemble(**kw) -> BaseEstimator:
    return _scaled(
        MLPEnsembleRegressor(
            **{
                "n_members": 5,
                "hidden_layer_sizes": (96, 48, 16),
                "batch_size": 16,
                "n_epochs": 150,
                **kw,
            }
        )
    )


def _make_xgboost(**kw) -> BaseEstimator:
    return GradientBoostingRegressor(
        **{"n_estimators": 200, "max_depth": 6, "learning_rate": 0.1, **kw}
    )


def _make_tree(**kw) -> BaseEstimator:
    return DecisionTreeRegressor(**{"max_depth": 12, **kw})


def _make_svr(**kw) -> BaseEstimator:
    return _scaled(SVR(**{"C": 100.0, "gamma": 0.1, "epsilon": 0.01, "n_epochs": 80, **kw}))


#: Regressor factories; ``"mlp"`` and ``"mlp_ensemble"`` are the paper's
#: Sec. VI models, the rest support the ablation benches.
REGRESSOR_REGISTRY = {
    "mlp": _make_mlp,
    "mlp_ensemble": _make_mlp_ensemble,
    "xgboost": _make_xgboost,
    "decision_tree": _make_tree,
    "svr": _make_svr,
}

#: Floor (seconds) protecting the log transform from degenerate inputs.
_TIME_FLOOR = 1e-9


class PerformancePredictor:
    """Execution-time regressor over one feature set.

    Parameters
    ----------
    model:
        :data:`REGRESSOR_REGISTRY` key or estimator instance.
    feature_set:
        Feature subset (paper Figs. 6–7 sweep ``set1``/``set12``/
        ``set123``/``imp``).
    mode:
        ``"joint"`` (one model, one-hot format input) or
        ``"per_format"`` (independent model per format).
    **model_kwargs:
        Overrides forwarded to the factory.
    """

    def __init__(
        self,
        model: Union[str, BaseEstimator] = "mlp_ensemble",
        *,
        feature_set: Union[str, Sequence[str]] = "set123",
        mode: str = "joint",
        **model_kwargs,
    ) -> None:
        if mode not in ("joint", "per_format"):
            raise ValueError("mode must be 'joint' or 'per_format'")
        self.mode = mode
        self.feature_set = feature_set
        if isinstance(model, str):
            try:
                self._factory = lambda m=model, kw=model_kwargs: REGRESSOR_REGISTRY[m](**kw)
            except KeyError:  # pragma: no cover - checked below
                raise
            if model not in REGRESSOR_REGISTRY:
                raise ValueError(
                    f"unknown model {model!r}; expected one of {sorted(REGRESSOR_REGISTRY)}"
                )
            self.model_name = model
        else:
            template = model
            self._factory = lambda: clone(template)
            self.model_name = type(model).__name__

    # -- encoding -------------------------------------------------------------

    def _joint_X(self, X: np.ndarray, fmt_idx: np.ndarray, n_formats: int) -> np.ndarray:
        onehot = np.zeros((X.shape[0], n_formats))
        onehot[np.arange(X.shape[0]), fmt_idx] = 1.0
        return np.hstack([X, onehot])

    # -- fitting ----------------------------------------------------------------

    def fit(self, data: SpMVDataset) -> "PerformancePredictor":
        """Fit on every (matrix, format) pair of the dataset."""
        self.formats_ = data.formats
        X = data.X(self.feature_set)
        T = np.maximum(data.times, _TIME_FLOOR)
        n, K = T.shape
        if self.mode == "joint":
            rows = np.repeat(np.arange(n), K)
            fmts = np.tile(np.arange(K), n)
            Xj = self._joint_X(X[rows], fmts, K)
            yj = np.log(T[rows, fmts])
            self.model_ = self._factory()
            self.model_.fit(Xj, yj)
        else:
            self.models_ = {}
            for k, fmt in enumerate(self.formats_):
                est = self._factory()
                est.fit(X, np.log(T[:, k]))
                self.models_[fmt] = est
        return self

    # -- prediction -----------------------------------------------------------------

    def predict(self, data: Union[SpMVDataset, np.ndarray]) -> np.ndarray:
        """Predicted execution seconds, shape ``(n_samples, n_formats)``.

        A single 1-D feature vector is treated as a one-row batch.
        """
        X = data.X(self.feature_set) if isinstance(data, SpMVDataset) else _as_batch(data)
        n = X.shape[0]
        K = len(self.formats_)
        out = np.empty((n, K))
        if self.mode == "joint":
            for k in range(K):
                Xk = self._joint_X(X, np.full(n, k), K)
                out[:, k] = np.exp(self.model_.predict(Xk))
        else:
            for k, fmt in enumerate(self.formats_):
                out[:, k] = np.exp(self.models_[fmt].predict(X))
        return out

    @deprecated("PerformancePredictor.predict")
    def predict_times(self, data: Union[SpMVDataset, np.ndarray]) -> np.ndarray:
        """Deprecated alias of :meth:`predict`."""
        return self.predict(data)

    def predict_best(self, data: Union[SpMVDataset, np.ndarray]) -> np.ndarray:
        """Format index with minimum *predicted* time per sample."""
        return np.argmin(self.predict(data), axis=1)

    # -- evaluation ---------------------------------------------------------------------

    def rme(self, data: SpMVDataset) -> float:
        """Overall RME across every (matrix, format) pair (Sec. VI-A)."""
        pred = self.predict(data).ravel()
        meas = np.maximum(data.times, _TIME_FLOOR).ravel()
        return relative_mean_error(meas, pred)

    def rme_per_format(self, data: SpMVDataset) -> Dict[str, float]:
        """RME of each format separately (Sec. VI-B / Fig. 7)."""
        pred = self.predict(data)
        meas = np.maximum(data.times, _TIME_FLOOR)
        return {
            fmt: relative_mean_error(meas[:, k], pred[:, k])
            for k, fmt in enumerate(self.formats_)
        }

    # -- the stable estimator surface --------------------------------------

    def get_params(self) -> dict:
        """Constructor arguments as a dict (the estimator protocol)."""
        return {
            "model": self.model_name,
            "feature_set": self.feature_set,
            "mode": self.mode,
        }

    def save(self, path) -> None:
        """Serialise this fitted predictor to one ``.npz`` artifact.

        Same payload shape as the versioned model registry
        (:mod:`repro.serve.registry`) minus the metadata sidecar;
        :meth:`load` reads it back bit-identically.
        """
        from ..ml.serialize import save_payload

        save_payload({"kind": "predictor", "wrapper": self.get_state()}, path)

    @classmethod
    def load(cls, path) -> "PerformancePredictor":
        """Load a predictor saved by :meth:`save`."""
        from ..ml.serialize import SerializationError, load_payload

        payload = load_payload(path)
        if not isinstance(payload, dict) or payload.get("kind") != "predictor":
            raise SerializationError(
                f"artifact {path} does not hold a PerformancePredictor"
            )
        return cls.from_state(payload["wrapper"])

    # -- persistence (model-registry support) ------------------------------

    def get_state(self) -> dict:
        """Fitted state for the :mod:`repro.serve` registry codec."""
        state = {
            "model_name": self.model_name,
            "feature_set": self.feature_set,
            "mode": self.mode,
            "formats": list(self.formats_),
        }
        if self.mode == "joint":
            state["model"] = self.model_
        else:
            state["models"] = dict(self.models_)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "PerformancePredictor":
        """Rebuild a fitted predictor from :meth:`get_state` output."""
        fs = state["feature_set"]
        feature_set = fs if isinstance(fs, str) else tuple(fs)
        if state["model_name"] in REGRESSOR_REGISTRY:
            pred = cls(state["model_name"], feature_set=feature_set,
                       mode=state["mode"])
        else:
            pred = cls.__new__(cls)
            pred.model_name = state["model_name"]
            pred.feature_set = feature_set
            pred.mode = state["mode"]
            # Custom estimator instances lose their factory across the
            # artifact boundary; a re-fit needs a fresh predictor.
            def _no_factory():
                raise RuntimeError(
                    "predictor was restored from an artifact with a custom "
                    "estimator; construct a new PerformancePredictor to re-fit"
                )
            pred._factory = _no_factory
        pred.formats_ = tuple(state["formats"])
        if state["mode"] == "joint":
            pred.model_ = state["model"]
        else:
            pred.models_ = dict(state["models"])
        return pred
