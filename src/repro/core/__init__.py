"""The paper's contribution: labeling, selection, performance modeling.

Pipeline overview (matching the paper's Secs. IV–VI):

1. :func:`~repro.core.dataset.build_dataset` — run the 50-rep labeling
   protocol over a corpus on one simulated device/precision.
2. :class:`~repro.core.selector.FormatSelector` — direct best-format
   classification (decision tree / SVM / MLP / XGBoost).
3. :class:`~repro.core.predictor.PerformancePredictor` — per-format or
   joint execution-time regression (MLP / MLP ensemble / others).
4. :class:`~repro.core.indirect.IndirectClassifier` — format selection
   via predicted times with a tolerance band.
5. :mod:`~repro.core.analysis` — feature importance, slowdown tables.
"""

from .analysis import (  # noqa: F401
    feature_importance_ranking,
    misprediction_slowdowns,
    slowdown_table_row,
    top_k_features,
)
from .confidence import ConfidenceDecision, ConfidenceSelector  # noqa: F401
from .dataset import SpMVDataset, build_dataset  # noqa: F401
from .indirect import IndirectClassifier, tolerant_accuracy  # noqa: F401
from .labeling import DEFAULT_REPS, MatrixLabel, label_matrix  # noqa: F401
from .predictor import REGRESSOR_REGISTRY, PerformancePredictor  # noqa: F401
from .sampling import SamplingSelector, sample_rows  # noqa: F401
from .selector import MODEL_REGISTRY, PAPER_GRIDS, FormatSelector, tuned_selector  # noqa: F401

__all__ = [
    "MatrixLabel",
    "label_matrix",
    "DEFAULT_REPS",
    "SpMVDataset",
    "build_dataset",
    "FormatSelector",
    "MODEL_REGISTRY",
    "PAPER_GRIDS",
    "tuned_selector",
    "PerformancePredictor",
    "REGRESSOR_REGISTRY",
    "IndirectClassifier",
    "tolerant_accuracy",
    "SamplingSelector",
    "sample_rows",
    "ConfidenceSelector",
    "ConfidenceDecision",
    "feature_importance_ranking",
    "top_k_features",
    "misprediction_slowdowns",
    "slowdown_table_row",
]
