"""Confidence-gated hybrid selection (SMAT-style, Li et al.).

The paper's related work (Sec. VII, [10]) describes SMAT's decision
rule: the model keeps a confidence value per prediction, and when the
confidence is *below* a threshold it actually *executes the candidate
formats* and decides from measurements.  This module implements that
hybrid:

* confident predictions cost one feature pass + inference;
* unconfident ones fall back to probing the model's top-``k`` candidate
  formats on the (simulated) device and taking the measured winner.

The ablation bench sweeps the threshold to show the accuracy/probing
trade-off the SMAT design exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..formats import SparseFormat
from ..gpu import SimulationError, SpMVExecutor
from .dataset import SpMVDataset
from .selector import FormatSelector

__all__ = ["ConfidenceSelector", "ConfidenceDecision"]


@dataclass(frozen=True)
class ConfidenceDecision:
    """Outcome of one confidence-gated selection."""

    fmt: str            #: chosen format
    confidence: float   #: model probability of its top class
    probed: bool        #: True when the fallback measurement ran
    probe_seconds: float  #: simulated device time spent probing


class ConfidenceSelector:
    """ML selector with measurement fallback below a confidence threshold.

    Parameters
    ----------
    selector:
        A fitted (or to-be-fitted) :class:`FormatSelector` whose
        estimator exposes ``predict_proba`` (decision tree, MLP,
        XGBoost and their pipelines all do; SVC does not).
    executor:
        Device used for fallback probes.
    threshold:
        Minimum top-class probability to trust the model outright.
    top_k:
        Number of highest-probability formats probed on fallback.
    probe_reps:
        Benchmark repetitions per probed format.
    """

    def __init__(
        self,
        selector: FormatSelector,
        executor: SpMVExecutor,
        *,
        threshold: float = 0.6,
        top_k: int = 2,
        probe_reps: int = 3,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.selector = selector
        self.executor = executor
        self.threshold = float(threshold)
        self.top_k = int(top_k)
        self.probe_reps = int(probe_reps)

    # -- fitting -----------------------------------------------------------

    def fit(self, data: SpMVDataset) -> "ConfidenceSelector":
        self.selector.fit(data)
        return self

    # -- selection -----------------------------------------------------------

    def _proba(self, X: np.ndarray) -> np.ndarray:
        est = self.selector.estimator
        try:
            return est.predict_proba(np.asarray(X))
        except AttributeError as exc:
            # Either the estimator itself, or a pipeline's final step
            # (e.g. SVC), lacks probability output.
            raise TypeError(
                f"{type(est).__name__} exposes no usable predict_proba; use a "
                "probabilistic model (tree/MLP/XGBoost)"
            ) from exc

    def decide(self, matrix: SparseFormat, features: np.ndarray) -> ConfidenceDecision:
        """Confidence-gated decision for one matrix.

        Parameters
        ----------
        matrix:
            The matrix itself (needed only if the fallback probe runs).
        features:
            Its feature vector in the selector's feature set.
        """
        proba = self._proba(np.asarray(features)[None, :])[0]
        formats = self.selector.formats_
        if formats is None:
            raise RuntimeError("selector must be fitted on a dataset")
        order = np.argsort(proba)[::-1]
        confidence = float(proba[order[0]])
        if confidence >= self.threshold:
            return ConfidenceDecision(
                fmt=formats[order[0]],
                confidence=confidence,
                probed=False,
                probe_seconds=0.0,
            )
        # Fallback: measure the top-k candidates, keep the winner.
        candidates = [formats[i] for i in order[: self.top_k]]
        best_fmt, best_time, spent = None, np.inf, 0.0
        for fmt in candidates:
            try:
                t = self.executor.benchmark(matrix, fmt, reps=self.probe_reps).seconds
            except SimulationError:
                continue
            spent += t * self.probe_reps
            if t < best_time:
                best_fmt, best_time = fmt, t
        if best_fmt is None:  # every candidate failed; trust the model
            best_fmt = formats[order[0]]
        return ConfidenceDecision(
            fmt=best_fmt, confidence=confidence, probed=True, probe_seconds=spent
        )

    def evaluate(
        self, data: SpMVDataset, matrices: Dict[str, SparseFormat]
    ) -> Dict[str, float]:
        """Accuracy / probe-rate / probe-cost over a labeled dataset.

        ``matrices`` maps dataset names to the actual matrices (needed
        for the probes).
        """
        X = data.X(self.selector.feature_set)
        fmt_index = {f: i for i, f in enumerate(data.formats)}
        hits = 0
        probed = 0
        probe_seconds = 0.0
        labels = data.labels
        for i, name in enumerate(data.names):
            decision = self.decide(matrices[name], X[i])
            hits += fmt_index[decision.fmt] == labels[i]
            probed += decision.probed
            probe_seconds += decision.probe_seconds
        n = len(data)
        return {
            "accuracy": hits / n,
            "probe_rate": probed / n,
            "probe_seconds_total": probe_seconds,
        }
