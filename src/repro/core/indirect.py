"""Indirect classification via performance regression (paper Sec. VI-C).

Instead of classifying the best format directly, predict every format's
execution time and pick the argmin.  The paper's *tolerance* parameter
relaxes correctness: a prediction counts as correct when the *measured*
time of the chosen format is within ``(1 + tolerance)`` of the measured
best — i.e. choosing a near-tie format is not an error.  At 5 %
tolerance this matches/beats direct XGBoost classification (Table XIV).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .dataset import SpMVDataset
from .predictor import PerformancePredictor

__all__ = ["IndirectClassifier", "tolerant_accuracy"]


def tolerant_accuracy(
    times: np.ndarray, pred_idx: np.ndarray, tolerance: float = 0.0
) -> float:
    """Accuracy under the paper's tolerance rule.

    Parameters
    ----------
    times:
        Measured ``(n_samples, n_formats)`` execution seconds.
    pred_idx:
        Chosen format index per sample.
    tolerance:
        Allowed relative gap to the measured optimum (``0.05`` = the
        paper's 5 % band; ``0`` requires the exact best format).
    """
    times = np.asarray(times, dtype=np.float64)
    pred_idx = np.asarray(pred_idx, dtype=np.int64)
    if times.ndim != 2 or times.shape[0] != pred_idx.size:
        raise ValueError("times must be (n_samples, n_formats) matching pred_idx")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    best = times.min(axis=1)
    chosen = times[np.arange(times.shape[0]), pred_idx]
    return float(np.mean(chosen <= best * (1.0 + tolerance) + 1e-15))


class IndirectClassifier:
    """Format selection through a :class:`PerformancePredictor`.

    Parameters
    ----------
    predictor:
        A performance predictor (fitted or not); defaults to the
        paper's MLP-ensemble joint regressor.
    tolerance:
        Default tolerance band for :meth:`score`.
    """

    def __init__(
        self,
        predictor: Union[PerformancePredictor, None] = None,
        *,
        tolerance: float = 0.0,
        **predictor_kwargs,
    ) -> None:
        self.predictor = predictor or PerformancePredictor(
            "mlp_ensemble", **predictor_kwargs
        )
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = float(tolerance)

    def fit(self, data: SpMVDataset) -> "IndirectClassifier":
        self.predictor.fit(data)
        return self

    def predict(self, data: Union[SpMVDataset, np.ndarray]) -> np.ndarray:
        """Format index with the best predicted time."""
        return self.predictor.predict_best(data)

    def predict_formats(self, data: Union[SpMVDataset, np.ndarray]) -> np.ndarray:
        """Format names with the best predicted time."""
        return np.array(self.predictor.formats_)[self.predict(data)]

    def score(
        self, data: SpMVDataset, *, tolerance: Union[float, None] = None
    ) -> float:
        """Tolerant classification accuracy on measured times."""
        tol = self.tolerance if tolerance is None else tolerance
        return tolerant_accuracy(data.times, self.predict(data), tol)
