"""Matrix Market (.mtx) I/O for COO matrices.

A minimal, dependency-free reader/writer for the subset of the Matrix
Market exchange format that sparse-matrix collections (SuiteSparse
included) actually use: ``matrix coordinate
real|integer|pattern general|symmetric|skew-symmetric``.  This lets the
library ingest real SuiteSparse files when they are available, and
round-trip its own synthetic corpus to disk.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..formats.coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market", "MatrixMarketError"]


class MatrixMarketError(ValueError):
    """Raised on malformed Matrix Market input."""


_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source: Union[str, Path, TextIO]) -> COOMatrix:
    """Parse a Matrix Market coordinate file into a :class:`COOMatrix`.

    Supports real/integer/pattern fields and
    general/symmetric/skew-symmetric storage (symmetric halves are
    expanded).  Pattern matrices get unit values.

    Raises
    ------
    MatrixMarketError
        On missing/invalid header, unsupported qualifiers, entry-count
        mismatch, or out-of-range indices.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_matrix_market(fh)

    header = source.readline()
    if not header.startswith("%%MatrixMarket"):
        raise MatrixMarketError("missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) != 5:
        raise MatrixMarketError(f"malformed header: {header.strip()!r}")
    _, obj, layout, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or layout != "coordinate":
        raise MatrixMarketError(
            f"only 'matrix coordinate' is supported, got {obj} {layout}"
        )
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

    # Skip comments, read the size line.
    line = source.readline()
    while line and line.lstrip().startswith("%"):
        line = source.readline()
    try:
        m, n, nnz = (int(t) for t in line.split())
    except (ValueError, TypeError):
        raise MatrixMarketError(f"bad size line: {line!r}") from None

    body = np.loadtxt(source, ndmin=2) if nnz else np.zeros((0, 3))
    if body.size and body.shape[0] != nnz:
        raise MatrixMarketError(
            f"expected {nnz} entries, file has {body.shape[0]}"
        )
    if nnz and field == "pattern":
        if body.shape[1] < 2:
            raise MatrixMarketError("pattern entries need 2 columns")
        row = body[:, 0].astype(np.int64) - 1
        col = body[:, 1].astype(np.int64) - 1
        val = np.ones(nnz)
    elif nnz:
        if body.shape[1] < 3:
            raise MatrixMarketError("real/integer entries need 3 columns")
        row = body[:, 0].astype(np.int64) - 1
        col = body[:, 1].astype(np.int64) - 1
        val = body[:, 2].astype(np.float64)
    else:
        row = col = np.zeros(0, np.int64)
        val = np.zeros(0)

    if symmetry in ("symmetric", "skew-symmetric") and nnz:
        off = row != col
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        row = np.concatenate([row, col[off]])
        col = np.concatenate([col, row[: nnz][off]])
        val = np.concatenate([val, sign * val[off]])

    return COOMatrix((m, n), row, col, val)


def write_matrix_market(
    matrix: COOMatrix, target: Union[str, Path, TextIO], *, comment: str = ""
) -> None:
    """Write a COO matrix as ``matrix coordinate real general``.

    Parameters
    ----------
    matrix:
        The matrix to serialise.
    target:
        Path or open text handle.
    comment:
        Optional comment block (each line is ``%``-prefixed).
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_matrix_market(matrix, fh, comment=comment)
        return

    target.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        target.write(f"% {line}\n")
    target.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
    buf = io.StringIO()
    np.savetxt(
        buf,
        np.column_stack(
            [matrix.row + 1, matrix.col + 1, matrix.val]
        ),
        fmt=("%d", "%d", "%.17g"),
    )
    target.write(buf.getvalue())
