"""Synthetic sparse-matrix generators.

These ten structural families are the stand-in for the SuiteSparse
collection (DESIGN.md, "Substitutions").  Each family targets a regime
that makes a different storage format win, which is the property the
format-selection study depends on:

===================  ======================================================
family               structure / who tends to win
===================  ======================================================
``random_uniform``   unstructured Erdős–Rényi scatter; CSR/CSR5
``banded``           contiguous diagonal band; ELL & CSR (regular rows)
``multi_diagonal``   several offset diagonals (FD stencils); ELL
``stencil_2d``       5/9-point Poisson grids; ELL/CSR
``stencil_3d``       7/27-point grids; ELL/CSR
``fem_blocks``       block-structured FEM-like coupling; CSR, good locality
``power_law``        Zipf row lengths (graphs); HYB / merge-CSR / CSR5
``rmat``             Kronecker-style skewed graphs; merge-CSR / CSR5
``dense_rows``       uniform background + few dense rows; HYB
``clustered``        contiguous non-zero chunks per row; CSR (cache-friendly)
===================  ======================================================

Every generator is deterministic in ``seed`` and returns a canonical
:class:`~repro.formats.coo.COOMatrix`.  Values are drawn from a
standard normal unless stated otherwise; SpMV performance does not
depend on the values, only the structure (the paper's features are
purely structural).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..formats.coo import COOMatrix

__all__ = [
    "random_uniform",
    "banded",
    "multi_diagonal",
    "stencil_2d",
    "stencil_3d",
    "fem_blocks",
    "power_law",
    "rmat",
    "dense_rows",
    "clustered",
    "GENERATOR_FAMILIES",
]


def _values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Non-zero values: standard normal, nudged away from exact zero."""
    v = rng.standard_normal(n)
    v[v == 0.0] = 1.0
    return v


def _coo(m: int, n: int, row, col, rng) -> COOMatrix:
    row = np.asarray(row)
    return COOMatrix((m, n), row, np.asarray(col), _values(rng, row.size))


def _check_dims(m: int, n: int) -> None:
    if m <= 0 or n <= 0:
        raise ValueError(f"matrix dimensions must be positive, got {m}x{n}")


# ---------------------------------------------------------------------------


def random_uniform(m: int, n: int, *, nnz: Optional[int] = None,
                   density: Optional[float] = None, seed: int = 0) -> COOMatrix:
    """Unstructured uniform scatter (Erdős–Rényi).

    Exactly one of ``nnz`` or ``density`` must be given.  Duplicates
    are merged, so the realised nnz can be marginally below the target
    for dense targets.
    """
    _check_dims(m, n)
    if (nnz is None) == (density is None):
        raise ValueError("give exactly one of nnz or density")
    if nnz is None:
        nnz = int(round(density * m * n))
    nnz = min(max(nnz, 0), m * n)
    rng = np.random.default_rng(seed)
    if nnz > 0.25 * m * n:
        # Dense regime: sample cell indices without replacement.
        cells = rng.choice(m * n, size=nnz, replace=False)
        row, col = np.divmod(cells, n)
    else:
        row = rng.integers(0, m, nnz)
        col = rng.integers(0, n, nnz)
    return _coo(m, n, row, col, rng)


def banded(m: int, n: int, *, bandwidth: int = 5, fill: float = 1.0,
           seed: int = 0) -> COOMatrix:
    """Band matrix: entries within ``bandwidth`` of the (scaled) diagonal.

    ``fill`` < 1 keeps each in-band cell with that probability, producing
    the slightly ragged bands typical of structural-engineering
    matrices.  Row lengths are near-constant: the ELL/CSR sweet spot.
    """
    _check_dims(m, n)
    if bandwidth < 1:
        raise ValueError("bandwidth must be >= 1")
    rng = np.random.default_rng(seed)
    half = bandwidth // 2
    offsets = np.arange(-half, bandwidth - half)
    scale = n / m
    row = np.repeat(np.arange(m), offsets.size)
    col = (row * scale).astype(np.int64) + np.tile(offsets, m)
    keep = (col >= 0) & (col < n)
    if fill < 1.0:
        keep &= rng.random(col.size) < fill
    return _coo(m, n, row[keep], col[keep], rng)


def multi_diagonal(n: int, *, offsets: Sequence[int] = (-64, -1, 0, 1, 64),
                   fill: float = 1.0, seed: int = 0) -> COOMatrix:
    """Square matrix with non-zeros on the given diagonals (FD stencils)."""
    _check_dims(n, n)
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for off in offsets:
        r = np.arange(max(0, -off), min(n, n - off))
        c = r + off
        if fill < 1.0:
            keep = rng.random(r.size) < fill
            r, c = r[keep], c[keep]
        rows.append(r)
        cols.append(c)
    row = np.concatenate(rows) if rows else np.zeros(0, np.int64)
    col = np.concatenate(cols) if cols else np.zeros(0, np.int64)
    return _coo(n, n, row, col, rng)


def stencil_2d(nx: int, ny: int, *, points: int = 5, seed: int = 0) -> COOMatrix:
    """5- or 9-point Poisson stencil on an ``nx × ny`` grid."""
    if points not in (5, 9):
        raise ValueError("points must be 5 or 9")
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny
    if points == 5:
        neigh = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
    else:
        neigh = [(di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1)]
    ii, jj = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    ii, jj = ii.ravel(), jj.ravel()
    rows, cols = [], []
    for di, dj in neigh:
        ni, nj = ii + di, jj + dj
        ok = (ni >= 0) & (ni < nx) & (nj >= 0) & (nj < ny)
        rows.append((ii * ny + jj)[ok])
        cols.append((ni * ny + nj)[ok])
    rng = np.random.default_rng(seed)
    return _coo(n, n, np.concatenate(rows), np.concatenate(cols), rng)


def stencil_3d(nx: int, ny: int, nz: int, *, points: int = 7, seed: int = 0) -> COOMatrix:
    """7- or 27-point stencil on an ``nx × ny × nz`` grid."""
    if points not in (7, 27):
        raise ValueError("points must be 7 or 27")
    if min(nx, ny, nz) <= 0:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny * nz
    if points == 7:
        neigh = [(0, 0, 0), (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0),
                 (0, 0, -1), (0, 0, 1)]
    else:
        neigh = [(a, b, c) for a in (-1, 0, 1) for b in (-1, 0, 1) for c in (-1, 0, 1)]
    ii, jj, kk = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    ii, jj, kk = ii.ravel(), jj.ravel(), kk.ravel()
    rows, cols = [], []
    for di, dj, dk in neigh:
        ni, nj, nk = ii + di, jj + dj, kk + dk
        ok = ((ni >= 0) & (ni < nx) & (nj >= 0) & (nj < ny)
              & (nk >= 0) & (nk < nz))
        rows.append((ii * ny * nz + jj * nz + kk)[ok])
        cols.append((ni * ny * nz + nj * nz + nk)[ok])
    rng = np.random.default_rng(seed)
    return _coo(n, n, np.concatenate(rows), np.concatenate(cols), rng)


def fem_blocks(n_blocks: int, block_size: int, *, coupling: float = 0.05,
               block_fill: float = 0.6, seed: int = 0) -> COOMatrix:
    """Block-diagonal FEM-like matrix with sparse inter-block coupling.

    Dense-ish diagonal blocks (``block_fill``) plus a few entries linking
    neighbouring blocks — the classic mesh-partitioned structure with
    excellent gather locality.
    """
    if n_blocks <= 0 or block_size <= 0:
        raise ValueError("n_blocks and block_size must be positive")
    n = n_blocks * block_size
    rng = np.random.default_rng(seed)
    per_block = max(1, int(block_fill * block_size * block_size))
    b = np.repeat(np.arange(n_blocks), per_block) * block_size
    row = b + rng.integers(0, block_size, b.size)
    col = b + rng.integers(0, block_size, b.size)
    if n_blocks > 1 and coupling > 0:
        n_link = int(coupling * n_blocks * block_size) + 1
        lb = rng.integers(0, n_blocks - 1, n_link)
        r = lb * block_size + rng.integers(0, block_size, n_link)
        c = (lb + 1) * block_size + rng.integers(0, block_size, n_link)
        row = np.concatenate([row, r, c])
        col = np.concatenate([col, c, r])
    return _coo(n, n, row, col, rng)


def power_law(m: int, n: int, *, nnz: int, alpha: float = 2.0,
              seed: int = 0) -> COOMatrix:
    """Zipf-distributed row lengths with uniform columns (web/social graphs).

    Row weights follow ``rank**-(alpha - 1)``: *larger* ``alpha`` gives
    heavier tails (a few rows holding a large share of nnz) — the
    regime where ELL explodes and CSR load-balances poorly.
    """
    _check_dims(m, n)
    if nnz <= 0:
        raise ValueError("nnz must be positive")
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a normalisable tail")
    rng = np.random.default_rng(seed)
    ranks = rng.permutation(m)  # heavy rows scattered, not clustered
    weights = 1.0 / (ranks + 1.0) ** (alpha - 1.0)
    weights /= weights.sum()
    lengths = rng.multinomial(nnz, weights)
    np.minimum(lengths, n, out=lengths)
    row = np.repeat(np.arange(m), lengths)
    col = rng.integers(0, n, row.size)
    return _coo(m, n, row, col, rng)


def rmat(scale: int, *, edge_factor: int = 8,
         probs: Sequence[float] = (0.57, 0.19, 0.19, 0.05),
         seed: int = 0) -> COOMatrix:
    """R-MAT / Kronecker-style graph adjacency matrix (2^scale vertices).

    Recursive quadrant sampling with the Graph500 default probabilities;
    produces the doubly skewed degree distributions of real networks.
    """
    if scale <= 0 or scale > 26:
        raise ValueError("scale must be in 1..26")
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("quadrant probabilities must sum to 1")
    n = 1 << scale
    n_edges = edge_factor * n
    rng = np.random.default_rng(seed)
    row = np.zeros(n_edges, dtype=np.int64)
    col = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        # Choose the quadrant at this recursion level for every edge:
        # (top-left, top-right, bottom-left, bottom-right) w.p. (a, b, c, d).
        q = rng.random(n_edges)
        down = q >= a + b
        right = np.where(down, q >= a + b + c, q >= a)
        row |= down.astype(np.int64) << bit
        col |= right.astype(np.int64) << bit
    return _coo(n, n, row, col, rng)


def dense_rows(m: int, n: int, *, base_density: float = 0.001,
               n_dense: int = 3, dense_fill: float = 0.5, seed: int = 0) -> COOMatrix:
    """Row-regular sparse background plus a few nearly dense rows.

    The canonical HYB case: every background row holds exactly ``k``
    entries (so the ELL part of HYB is padding-free), while the dense
    rows spill to the COO part.
    """
    _check_dims(m, n)
    if not 0 <= n_dense <= m:
        raise ValueError("n_dense must be in [0, rows]")
    rng = np.random.default_rng(seed)
    k = max(1, int(round(base_density * n)))
    row = np.repeat(np.arange(m), k)
    col = rng.integers(0, n, row.size)
    if n_dense:
        dr = rng.choice(m, size=n_dense, replace=False)
        per = max(1, int(dense_fill * n))
        drow = np.repeat(dr, per)
        dcol = rng.integers(0, n, drow.size)
        row = np.concatenate([row, drow])
        col = np.concatenate([col, dcol])
    return _coo(m, n, row, col, rng)


def clustered(m: int, n: int, *, nnz: int, chunk: int = 8, seed: int = 0) -> COOMatrix:
    """Contiguous chunks of non-zeros within rows (great cache locality).

    Non-zeros come in runs of ~``chunk`` consecutive columns, the
    structure feature set 3 (``snzb_*`` / ``nnzb_*``) is designed to
    detect.
    """
    _check_dims(m, n)
    if nnz <= 0 or chunk <= 0:
        raise ValueError("nnz and chunk must be positive")
    rng = np.random.default_rng(seed)
    n_chunks = max(1, nnz // chunk)
    crow = rng.integers(0, m, n_chunks)
    cstart = rng.integers(0, n, n_chunks)
    sizes = np.clip(rng.poisson(chunk, n_chunks), 1, None)
    row = np.repeat(crow, sizes)
    col = np.repeat(cstart, sizes) + _ramp(sizes)
    keep = col < n
    return _coo(m, n, row[keep], col[keep], rng)


def _ramp(sizes: np.ndarray) -> np.ndarray:
    """Concatenated 0..size-1 ramps for chunk expansion."""
    total = int(sizes.sum())
    starts = np.zeros(sizes.size, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, sizes)


#: Registry used by the corpus sampler: name -> generator callable.
GENERATOR_FAMILIES = {
    "random_uniform": random_uniform,
    "banded": banded,
    "multi_diagonal": multi_diagonal,
    "stencil_2d": stencil_2d,
    "stencil_3d": stencil_3d,
    "fem_blocks": fem_blocks,
    "power_law": power_law,
    "rmat": rmat,
    "dense_rows": dense_rows,
    "clustered": clustered,
}
