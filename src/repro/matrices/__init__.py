"""Sparse-matrix corpus: synthetic generators, corpus sampler, and I/O.

This subpackage is the reproduction's stand-in for the SuiteSparse
collection (paper Sec. III / Table I): ten structural generator
families, a Table-I-shaped corpus sampler, and Matrix Market I/O for
ingesting real ``.mtx`` files when available.
"""

from .collection import (  # noqa: F401
    NNZ_BINS,
    CorpusEntry,
    SyntheticCorpus,
    table1_statistics,
)
from .generators import (  # noqa: F401
    GENERATOR_FAMILIES,
    banded,
    clustered,
    dense_rows,
    fem_blocks,
    multi_diagonal,
    power_law,
    random_uniform,
    rmat,
    stencil_2d,
    stencil_3d,
)
from .mmio import MatrixMarketError, read_matrix_market, write_matrix_market  # noqa: F401
from .transform import (  # noqa: F401
    bandwidth,
    permute,
    reverse_cuthill_mckee,
    sort_rows_by_length,
)

__all__ = [
    "GENERATOR_FAMILIES",
    "random_uniform",
    "banded",
    "multi_diagonal",
    "stencil_2d",
    "stencil_3d",
    "fem_blocks",
    "power_law",
    "rmat",
    "dense_rows",
    "clustered",
    "NNZ_BINS",
    "CorpusEntry",
    "SyntheticCorpus",
    "table1_statistics",
    "read_matrix_market",
    "write_matrix_market",
    "MatrixMarketError",
    "permute",
    "sort_rows_by_length",
    "reverse_cuthill_mckee",
    "bandwidth",
]
