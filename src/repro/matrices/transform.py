"""Structure-preserving matrix transformations (reordering).

Reordering changes nothing about the linear operator (up to a
permutation of the unknowns) but everything about SpMV performance:
bandwidth-reducing permutations turn scattered gathers into cache-local
ones, and row sorting by length is the preprocessing step of
SELL-style formats.  These utilities support the reordering ablation
bench (does the best format change when you RCM a matrix?) and are
generally useful library features.

* :func:`permute` — apply explicit row/column permutations;
* :func:`sort_rows_by_length` — descending row-population order;
* :func:`reverse_cuthill_mckee` — the classic bandwidth-reducing BFS
  ordering (own implementation, no external graph library);
* :func:`bandwidth` — the matrix bandwidth ``max |i - j|``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..formats import COOMatrix, CSRMatrix

__all__ = ["permute", "sort_rows_by_length", "reverse_cuthill_mckee", "bandwidth"]


def permute(
    matrix: COOMatrix,
    row_perm: Optional[np.ndarray] = None,
    col_perm: Optional[np.ndarray] = None,
) -> COOMatrix:
    """Apply permutations: entry ``(i, j)`` moves to ``(row_perm[i], col_perm[j])``.

    ``None`` leaves that axis untouched.  Permutations must be true
    permutations of the axis range.
    """
    coo = matrix.to_coo()
    row, col = coo.row, coo.col
    if row_perm is not None:
        row_perm = np.asarray(row_perm, dtype=np.int64)
        if sorted(row_perm.tolist()) != list(range(coo.n_rows)):
            raise ValueError("row_perm is not a permutation of range(n_rows)")
        row = row_perm[row]
    if col_perm is not None:
        col_perm = np.asarray(col_perm, dtype=np.int64)
        if sorted(col_perm.tolist()) != list(range(coo.n_cols)):
            raise ValueError("col_perm is not a permutation of range(n_cols)")
        col = col_perm[col]
    return COOMatrix(coo.shape, row, col, coo.val)


def sort_rows_by_length(matrix: COOMatrix, *, descending: bool = True) -> Tuple[COOMatrix, np.ndarray]:
    """Reorder rows by population (SELL-style preprocessing).

    Returns ``(reordered, perm)`` where ``perm[i]`` is the new index of
    original row ``i``.
    """
    coo = matrix.to_coo()
    lengths = coo.row_lengths()
    order = np.argsort(-lengths if descending else lengths, kind="stable")
    perm = np.empty_like(order)
    perm[order] = np.arange(order.size)
    return permute(coo, row_perm=perm), perm


def bandwidth(matrix: COOMatrix) -> int:
    """Matrix bandwidth: ``max |row - col|`` over the non-zeros (0 if empty)."""
    coo = matrix.to_coo()
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.col.astype(np.int64) - coo.row.astype(np.int64)).max())


def reverse_cuthill_mckee(matrix: COOMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of a square matrix's graph.

    Treats the sparsity pattern as an undirected graph (the pattern is
    symmetrised internally), BFS-orders each connected component from a
    minimum-degree seed visiting neighbours in degree order, and
    reverses the result.  Returns ``perm`` with ``perm[i]`` = new index
    of original row/column ``i``; apply with
    ``permute(A, row_perm=perm, col_perm=perm)``.
    """
    coo = matrix.to_coo()
    if coo.n_rows != coo.n_cols:
        raise ValueError("RCM needs a square matrix")
    n = coo.n_rows
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    # Symmetrised adjacency in CSR form (self-loops dropped).
    row = np.concatenate([coo.row, coo.col]).astype(np.int64)
    col = np.concatenate([coo.col, coo.row]).astype(np.int64)
    off = row != col
    row, col = row[off], col[off]
    adj = CSRMatrix.from_coo(
        COOMatrix((n, n), row, col, np.ones(row.size))
    )
    degree = adj.row_lengths()

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # Process components, seeding each from its minimum-degree vertex.
    remaining = np.argsort(degree, kind="stable")
    for seed in remaining:
        if visited[seed]:
            continue
        visited[seed] = True
        queue = [int(seed)]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order[pos] = v
            pos += 1
            lo, hi = adj.indptr[v], adj.indptr[v + 1]
            neigh = adj.indices[lo:hi]
            fresh = neigh[~visited[neigh]]
            if fresh.size:
                fresh = fresh[np.argsort(degree[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(int(u) for u in fresh)
    order = order[::-1]  # the "reverse" in RCM
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n)
    return perm
