"""Synthetic corpus shaped like the SuiteSparse collection.

The paper evaluates on ~2300 SuiteSparse matrices whose nnz-range
histogram and per-range statistics it tabulates in Table I.  This
module samples a deterministic synthetic corpus with the same shape:

* the same eight nnz bins with (scaled) Table I counts,
* per-bin mean row counts chosen so mean nnz/row tracks Table I's
  ``avg. nnz_mu`` column (density falls as size grows),
* structural families drawn from :data:`repro.matrices.generators.GENERATOR_FAMILIES`
  with weights that favour engineered structure at small sizes and
  graph-like skew at large sizes, as in the real collection.

``scale`` shrinks every bin proportionally (min one matrix per bin) so
tests and CI-scale benchmarks can run in seconds while preserving the
distributional shape; ``max_nnz`` caps the largest matrices for RAM- or
time-constrained environments and is recorded so EXPERIMENTS.md can
note the deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..formats.coo import COOMatrix
from . import generators as G

__all__ = ["NNZ_BINS", "CorpusEntry", "SyntheticCorpus", "table1_statistics"]

#: Table I bins: (nnz lower bound, nnz upper bound, matrix count).
NNZ_BINS: Tuple[Tuple[int, int, int], ...] = (
    (3, 10_000, 747),
    (10_000, 50_000, 508),
    (50_000, 100_000, 209),
    (100_000, 500_000, 362),
    (500_000, 1_000_000, 147),
    (1_000_000, 5_000_000, 208),
    (5_000_000, 50_000_000, 109),
    (50_000_000, 200_000_000, 9),
)

#: Table I "avg. nnz_mu" per bin, used to pick row counts.
_BIN_NNZ_MU = (7.0, 15.0, 34.0, 69.0, 155.0, 214.0, 852.0, 29.0)

#: Per-bin density ceilings (fraction, not percent), mirroring Table I's
#: "avg. density" column falling from ~4.6 % to ~0.002 % as size grows.
_BIN_MAX_DENSITY = (0.12, 0.04, 0.025, 0.018, 0.015, 0.012, 0.008, 0.0005)

#: Per-bin family weights: structured families dominate small bins,
#: graph-like families grow with size (mirrors SuiteSparse domains).
_FAMILY_ORDER = (
    "random_uniform",
    "banded",
    "multi_diagonal",
    "stencil_2d",
    "stencil_3d",
    "fem_blocks",
    "power_law",
    "rmat",
    "dense_rows",
    "clustered",
)


def _family_weights(bin_index: int) -> np.ndarray:
    t = bin_index / (len(NNZ_BINS) - 1)  # 0 = tiny, 1 = huge
    w = {
        "random_uniform": 1.0,
        "banded": 1.3 - 0.6 * t,
        "multi_diagonal": 0.9 - 0.4 * t,
        "stencil_2d": 0.8,
        "stencil_3d": 0.5 + 0.3 * t,
        "fem_blocks": 0.9 - 0.3 * t,
        "power_law": 1.0 + 0.8 * t,
        "rmat": 0.6 + 1.0 * t,
        "dense_rows": 1.0,
        "clustered": 0.9,
    }
    arr = np.array([w[f] for f in _FAMILY_ORDER])
    return arr / arr.sum()


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus matrix: metadata plus a deterministic build recipe."""

    name: str            #: unique name, e.g. ``"power_law_0423"``
    family: str          #: generator family key
    bin_index: int       #: index into :data:`NNZ_BINS`
    target_nnz: int      #: sampled nnz target (realised nnz may differ)
    seed: int            #: generator seed
    params: Dict         #: concrete generator kwargs

    def build(self) -> COOMatrix:
        """Generate the matrix (deterministic; not cached)."""
        gen = G.GENERATOR_FAMILIES[self.family]
        return gen(**self.params)


class SyntheticCorpus:
    """Deterministic SuiteSparse-shaped corpus of synthetic matrices.

    Parameters
    ----------
    scale:
        Fraction of the Table I counts to sample (``1.0`` ≈ 2300
        matrices; ``0.1`` ≈ 230).  Every non-empty bin keeps at least
        one matrix.
    seed:
        Master seed; two corpora with equal ``(scale, seed, max_nnz)``
        are identical.
    max_nnz:
        Cap on the per-matrix nnz target (large bins are clipped);
        ``None`` keeps Table I's full range — a 50M+ nnz matrix needs a
        few GB of host RAM to generate.
    families:
        Optional subset of generator family names to restrict to.
    """

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        *,
        max_nnz: Optional[int] = None,
        families: Optional[Sequence[str]] = None,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        unknown = set(families or ()) - set(_FAMILY_ORDER)
        if unknown:
            raise ValueError(f"unknown families: {sorted(unknown)}")
        self.scale = float(scale)
        self.seed = int(seed)
        self.max_nnz = None if max_nnz is None else int(max_nnz)
        self.families = tuple(families) if families else _FAMILY_ORDER
        self.entries: List[CorpusEntry] = self._sample_entries()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self.entries)

    def build_all(self) -> Iterator[Tuple[CorpusEntry, COOMatrix]]:
        """Yield ``(entry, matrix)`` pairs, generating lazily."""
        for entry in self.entries:
            yield entry, entry.build()

    # -- sampling ---------------------------------------------------------

    def _sample_entries(self) -> List[CorpusEntry]:
        rng = np.random.default_rng(self.seed)
        entries: List[CorpusEntry] = []
        weights_cache = {}
        idx = 0
        for b, (lo, hi, count) in enumerate(NNZ_BINS):
            n_here = max(1, int(round(count * self.scale)))
            if self.max_nnz is not None and lo > self.max_nnz:
                continue  # bin entirely above the cap
            if b not in weights_cache:
                w = _family_weights(b)
                mask = np.array([f in self.families for f in _FAMILY_ORDER])
                w = w * mask
                weights_cache[b] = w / w.sum()
            w = weights_cache[b]
            for _ in range(n_here):
                family = _FAMILY_ORDER[rng.choice(len(_FAMILY_ORDER), p=w)]
                hi_eff = hi if self.max_nnz is None else min(hi, self.max_nnz)
                # Log-uniform, but floor the range so the bin's *mean* nnz
                # sits mid-bin like SuiteSparse rather than hugging the
                # lower edge.
                lo_eff = max(lo, hi_eff / 25.0, 4.0)
                nnz = int(np.exp(rng.uniform(np.log(lo_eff), np.log(hi_eff))))
                seed = int(rng.integers(0, 2**31 - 1))
                params = self._parameterise(family, nnz, b, seed, rng)
                entries.append(
                    CorpusEntry(
                        name=f"{family}_{idx:04d}",
                        family=family,
                        bin_index=b,
                        target_nnz=nnz,
                        seed=seed,
                        params=params,
                    )
                )
                idx += 1
        return entries

    def _parameterise(
        self, family: str, nnz: int, bin_index: int, seed: int, rng: np.random.Generator
    ) -> Dict:
        """Choose concrete generator kwargs hitting ~nnz with Table I shape."""
        mu = _BIN_NNZ_MU[bin_index] * float(np.exp(rng.normal(0.0, 0.4)))
        mu = max(2.0, mu)
        rows = max(4, int(nnz / mu))
        # Keep density under the bin ceiling (Table I: density falls with
        # size); widening the matrix preserves nnz while thinning it out.
        min_rows = int(math.sqrt(nnz / _BIN_MAX_DENSITY[bin_index])) + 1
        rows = max(rows, min_rows)

        if family == "random_uniform":
            cols = max(4, int(rows * float(np.exp(rng.normal(0.1, 0.3)))))
            return {"m": rows, "n": cols, "nnz": nnz, "seed": seed}
        if family == "banded":
            bw = max(1, int(round(mu)))
            return {"m": rows, "n": rows, "bandwidth": bw,
                    "fill": float(rng.uniform(0.85, 1.0)), "seed": seed}
        if family == "multi_diagonal":
            k = max(1, int(round(mu)))
            half = k // 2
            offs = sorted(set(
                [0]
                + [int(o) for o in rng.choice(np.arange(1, max(2, rows // 2)),
                                              size=min(half, 12), replace=False)]
                + [-int(o) for o in rng.choice(np.arange(1, max(2, rows // 2)),
                                               size=min(k - half - 1, 12), replace=False)]
            )) if rows > 4 else [0]
            return {"n": rows, "offsets": tuple(offs),
                    "fill": float(rng.uniform(0.8, 1.0)), "seed": seed}
        if family == "stencil_2d":
            pts = 5 if rng.random() < 0.6 else 9
            side = max(2, int(math.sqrt(nnz / pts)))
            return {"nx": side, "ny": side, "points": pts, "seed": seed}
        if family == "stencil_3d":
            pts = 7 if rng.random() < 0.6 else 27
            side = max(2, int(round((nnz / pts) ** (1.0 / 3.0))))
            return {"nx": side, "ny": side, "nz": side, "points": pts, "seed": seed}
        if family == "fem_blocks":
            bs = int(rng.integers(6, 48))
            nb = max(1, rows // bs)
            fill = min(1.0, nnz / max(nb * bs * bs, 1))
            return {"n_blocks": nb, "block_size": bs, "block_fill": max(fill, 0.02),
                    "coupling": float(rng.uniform(0.01, 0.1)), "seed": seed}
        if family == "power_law":
            return {"m": rows, "n": rows, "nnz": nnz,
                    "alpha": float(rng.uniform(1.6, 2.6)), "seed": seed}
        if family == "rmat":
            scale = max(3, min(26, int(round(math.log2(max(rows, 8))))))
            ef = max(1, int(round(nnz / (1 << scale))))
            return {"scale": scale, "edge_factor": ef, "seed": seed}
        if family == "dense_rows":
            cols = rows
            n_dense = int(rng.integers(1, 6))
            dense_part = 0.3 * nnz
            fill = min(0.9, max(dense_part / max(n_dense * cols, 1), 0.01))
            base = max(0.7 * nnz / max(rows * cols, 1), 1.0 / max(rows * cols, 1))
            return {"m": rows, "n": cols, "base_density": float(base),
                    "n_dense": n_dense, "dense_fill": float(fill), "seed": seed}
        if family == "clustered":
            return {"m": rows, "n": rows, "nnz": nnz,
                    "chunk": int(rng.integers(3, 33)), "seed": seed}
        raise KeyError(family)


def table1_statistics(
    corpus: SyntheticCorpus,
    profiles: Optional[Dict[str, "object"]] = None,
) -> List[Dict]:
    """Compute the paper's Table I rows for a corpus.

    Parameters
    ----------
    corpus:
        The corpus to summarise.
    profiles:
        Optional mapping ``entry.name -> MatrixProfile`` to reuse
        existing profiles; missing entries are built and profiled here.

    Returns
    -------
    list of dict
        One row per nnz bin with keys ``range``, ``count``,
        ``avg_rows``, ``avg_cols``, ``avg_density_pct``, ``avg_nnz_mu``,
        ``avg_nnz_sigma`` (density in percent, as Table I reports it).
    """
    from ..gpu.profile import profile_matrix

    acc: Dict[int, List] = {}
    for entry in corpus:
        if profiles is not None and entry.name in profiles:
            p = profiles[entry.name]
        else:
            p = profile_matrix(entry.build())
        acc.setdefault(entry.bin_index, []).append(p)

    rows = []
    for b, (lo, hi, _) in enumerate(NNZ_BINS):
        ps = acc.get(b)
        if not ps:
            continue
        rows.append(
            {
                "range": f"{lo:,} ~ {hi:,}",
                "count": len(ps),
                "avg_rows": float(np.mean([p.n_rows for p in ps])),
                "avg_cols": float(np.mean([p.n_cols for p in ps])),
                "avg_density_pct": float(np.mean([100.0 * p.density for p in ps])),
                "avg_nnz_mu": float(np.mean([p.nnz_mu for p in ps])),
                "avg_nnz_sigma": float(np.mean([p.nnz_sigma for p in ps])),
            }
        )
    return rows
