#!/usr/bin/env python3
"""Autotuned iterative solver: pick the SpMV format before iterating.

The paper's motivating workload: an iterative solver performs thousands
of SpMV calls with the *same* matrix, so spending milliseconds on
feature extraction + ML inference to choose the right format pays for
itself immediately.

This example runs a Jacobi iteration for ``A x = b`` on a synthetic
Poisson system and compares three strategies on the simulated Kepler
GPU:

* always CSR (the common default),
* the trained ML format selector,
* the oracle (measure everything first — what the selector tries to
  approximate).

Run:  python examples/autotune_solver.py [--iters 2000]
"""

import argparse

import numpy as np

from repro import KEPLER_K40C, SpMVExecutor, as_format
from repro.core import FormatSelector, build_dataset
from repro.features import FEATURE_SETS, extract_features, feature_vector
from repro.matrices import SyntheticCorpus, stencil_2d


def jacobi(A_coo, b, fmt: str, iters: int):
    """Jacobi iteration using the chosen storage format for SpMV."""
    A = as_format(A_coo, fmt)
    dense_diag = np.zeros(A_coo.n_rows)
    on_diag = A_coo.row == A_coo.col
    dense_diag[A_coo.row[on_diag]] = A_coo.val[on_diag]
    inv_d = 1.0 / dense_diag
    x = np.zeros_like(b)
    for _ in range(iters):
        # x <- x + D^-1 (b - A x); the SpMV dominates.
        x = x + inv_d * (b - A.spmv(x))
    return x


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iters", type=int, default=2000,
                        help="solver iterations (each one is an SpMV)")
    parser.add_argument("--grid", type=int, default=180, help="Poisson grid side")
    args = parser.parse_args()

    # The system: a 5-point Poisson matrix (diagonally dominant after a shift).
    A = stencil_2d(args.grid, args.grid, points=5, seed=3)
    dense = None  # never materialised; Jacobi needs only the diagonal
    n = A.n_rows
    rng = np.random.default_rng(0)
    # Shift values so the diagonal dominates (Jacobi converges).
    vals = np.where(A.row == A.col, 8.0 + np.abs(A.val), 0.25 * A.val)
    from repro.formats import COOMatrix

    A = COOMatrix(A.shape, A.row, A.col, vals)
    b = rng.standard_normal(n)

    executor = SpMVExecutor(KEPLER_K40C, "single", seed=0)

    # --- strategy 1: default CSR ---------------------------------------
    t_csr = executor.benchmark(A, "csr").seconds

    # --- strategy 2: ML selector ---------------------------------------
    print("training the format selector (small corpus)...")
    corpus = SyntheticCorpus(scale=0.02, seed=11, max_nnz=300_000)
    dataset = build_dataset(corpus, KEPLER_K40C, "single").drop_coo_best()
    selector = FormatSelector("xgboost", feature_set="set12")
    selector.fit(dataset)
    fv = feature_vector(extract_features(A), FEATURE_SETS["set12"])
    chosen = selector.predict_formats(fv[None, :])[0]
    t_ml = executor.benchmark(A, chosen).seconds

    # --- strategy 3: oracle ---------------------------------------------
    samples = executor.benchmark_all(A)
    times = {f: s.seconds for f, s in samples.items() if s is not None}
    oracle = min(times, key=times.get)

    # --- solve once to show the numerics actually work -------------------
    x = jacobi(A, b, chosen, min(args.iters, 200))
    residual = np.linalg.norm(b - as_format(A, "csr").spmv(x)) / np.linalg.norm(b)

    print(f"\nmatrix: {n}x{n} Poisson, nnz={A.nnz}")
    print(f"selector chose: {chosen}   (oracle: {oracle})")
    print(f"residual after {min(args.iters, 200)} Jacobi sweeps: {residual:.2e}")
    print(f"\nprojected GPU time for {args.iters} solver iterations:")
    for label, t in (
        ("always CSR", t_csr),
        (f"ML-selected ({chosen})", t_ml),
        (f"oracle ({oracle})", times[oracle]),
    ):
        print(f"  {label:22s} {t * args.iters * 1e3:9.2f} ms")
    saving = (t_csr - t_ml) / t_csr
    print(f"\nML selection vs CSR default: {saving:+.1%} SpMV time")


if __name__ == "__main__":
    main()
