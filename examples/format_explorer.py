#!/usr/bin/env python3
"""Format explorer: per-format GFLOPS for your matrices (Fig. 3 style).

Point it at Matrix Market files, or let it generate one matrix per
synthetic family, and it prints the achieved GFLOPS of all six storage
formats on a simulated GPU — the same sweep as the paper's Fig. 3 —
plus the winning format and the structural features that explain it.

Run:
    python examples/format_explorer.py                    # synthetic tour
    python examples/format_explorer.py path/to/*.mtx      # your matrices
    python examples/format_explorer.py --device p100 --precision double
"""

import argparse
import math

from repro.features import extract_features
from repro.formats import FORMAT_NAMES
from repro.gpu import DEVICES, SpMVExecutor
from repro.matrices import (
    GENERATOR_FAMILIES,
    banded,
    clustered,
    dense_rows,
    fem_blocks,
    multi_diagonal,
    power_law,
    random_uniform,
    read_matrix_market,
    rmat,
    stencil_2d,
    stencil_3d,
)


def synthetic_tour():
    """One representative matrix per generator family."""
    yield "banded", banded(30_000, 30_000, bandwidth=9, seed=1)
    yield "multi_diagonal", multi_diagonal(25_000, offsets=(-100, -1, 0, 1, 100), seed=2)
    yield "stencil_2d", stencil_2d(160, 160, points=5, seed=3)
    yield "stencil_3d", stencil_3d(30, 30, 30, points=7, seed=4)
    yield "fem_blocks", fem_blocks(800, 24, seed=5)
    yield "random_uniform", random_uniform(30_000, 30_000, nnz=400_000, seed=6)
    yield "clustered", clustered(30_000, 30_000, nnz=400_000, chunk=16, seed=7)
    yield "power_law", power_law(30_000, 30_000, nnz=400_000, alpha=1.7, seed=8)
    yield "rmat", rmat(14, edge_factor=16, seed=9)
    yield "dense_rows", dense_rows(30_000, 30_000, base_density=0.0005, n_dense=4, seed=10)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="Matrix Market files (.mtx)")
    parser.add_argument("--device", default="k80c", choices=sorted(DEVICES),
                        help="simulated GPU (default: k80c, the paper's Fig. 3)")
    parser.add_argument("--precision", default="single", choices=("single", "double"))
    args = parser.parse_args()

    executor = SpMVExecutor(DEVICES[args.device], args.precision, seed=0)

    if args.files:
        import os

        matrices = (
            (os.path.basename(path), read_matrix_market(path)) for path in args.files
        )
    else:
        matrices = synthetic_tour()

    header = f"{'matrix':16s} " + " ".join(f"{f:>10s}" for f in FORMAT_NAMES) + "   best"
    print(f"device={executor.device.name}  precision={args.precision}")
    print(header)
    print("-" * len(header))
    for name, matrix in matrices:
        gflops = {}
        for fmt in FORMAT_NAMES:
            try:
                gflops[fmt] = executor.benchmark(matrix, fmt).gflops
            except Exception:
                gflops[fmt] = float("nan")
        ok = {f: g for f, g in gflops.items() if not math.isnan(g)}
        best = max(ok, key=ok.get) if ok else "-"
        cells = " ".join(
            f"{gflops[f]:10.1f}" if not math.isnan(gflops[f]) else f"{'fail':>10s}"
            for f in FORMAT_NAMES
        )
        print(f"{str(name)[:16]:16s} {cells}   {best}")

        feats = extract_features(matrix)
        print(
            f"{'':16s} nnz={feats['nnz_tot']:.0f} mu={feats['nnz_mu']:.1f} "
            f"sigma={feats['nnz_sigma']:.1f} max={feats['nnz_max']:.0f} "
            f"chunks={feats['nnzb_tot']:.0f}"
        )


if __name__ == "__main__":
    main()
