#!/usr/bin/env python3
"""Capacity planning with the performance model (paper Sec. VI / VIII).

The paper highlights that a ~10 % RME execution-time predictor is
"highly attractive for capacity planning purposes".  This example plays
that scenario out: given a queue of sparse workloads (matrix + number
of SpMV calls), predict — without running anything — how long the queue
takes on a Kepler K40c vs a Pascal P100, per format, and schedule each
workload on the device/format with the best predicted throughput.
Afterwards it "runs" the plan on the simulator and reports how close
the prediction was.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.core import PerformancePredictor, build_dataset
from repro.features import FEATURE_SETS, extract_features, feature_vector
from repro.gpu import KEPLER_K40C, PASCAL_P100, SpMVExecutor
from repro.matrices import SyntheticCorpus, clustered, power_law, stencil_2d


def main() -> None:
    devices = {"K40c": KEPLER_K40C, "P100": PASCAL_P100}
    feature_set = "set123"

    # --- train one joint performance model per device -------------------
    print("training per-device performance models...")
    corpus = SyntheticCorpus(scale=0.03, seed=5, max_nnz=500_000)
    predictors = {}
    for name, dev in devices.items():
        ds = build_dataset(corpus, dev, "double")
        pp = PerformancePredictor("mlp_ensemble", feature_set=feature_set, mode="joint")
        pp.fit(ds)
        predictors[name] = (pp, ds.formats)

    # --- the workload queue ---------------------------------------------
    queue = [
        ("cfd_mesh", stencil_2d(300, 300, points=9, seed=1), 5_000),
        ("social_graph", power_law(40_000, 40_000, nnz=500_000, alpha=1.7, seed=2), 800),
        ("fem_assembly", clustered(30_000, 30_000, nnz=400_000, chunk=12, seed=3), 2_500),
    ]

    print(f"\n{'workload':14s} {'device':6s} {'format':10s} {'predicted':>11s} {'measured':>11s} {'err':>7s}")
    total_pred = total_meas = 0.0
    for name, matrix, calls in queue:
        fv = feature_vector(extract_features(matrix), FEATURE_SETS[feature_set])[None, :]
        # Pick (device, format) with the best predicted time.
        best = None
        for dev_name, (pp, formats) in predictors.items():
            times = pp.predict(fv)[0]
            k = int(np.argmin(times))
            if best is None or times[k] < best[3]:
                best = (dev_name, formats[k], k, times[k])
        dev_name, fmt, _, t_pred = best

        executor = SpMVExecutor(devices[dev_name], "double", seed=17)
        t_meas = executor.benchmark(matrix, fmt).seconds
        pred_total = t_pred * calls
        meas_total = t_meas * calls
        total_pred += pred_total
        total_meas += meas_total
        err = abs(t_pred - t_meas) / t_meas
        print(
            f"{name:14s} {dev_name:6s} {fmt:10s} "
            f"{pred_total * 1e3:9.1f}ms {meas_total * 1e3:9.1f}ms {err:6.1%}"
        )

    overall = abs(total_pred - total_meas) / total_meas
    print(f"\nqueue total: predicted {total_pred * 1e3:.1f} ms, "
          f"measured {total_meas * 1e3:.1f} ms ({overall:.1%} off)")


if __name__ == "__main__":
    main()
