#!/usr/bin/env python3
"""Quickstart: formats, simulated GPUs, features, and format selection.

Walks the library's whole pipeline on a handful of synthetic matrices:

1. build sparse matrices with different structures,
2. convert them between the six storage formats and run SpMV,
3. time every format on the simulated Kepler GPU,
4. extract the paper's 17 features,
5. train an XGBoost-style selector on a small corpus and use it to
   pick the format for an unseen matrix.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CSRMatrix, KEPLER_K40C, SpMVExecutor, as_format
from repro.core import FormatSelector, build_dataset
from repro.features import extract_features
from repro.formats import FORMAT_NAMES
from repro.matrices import SyntheticCorpus, banded, power_law


def main() -> None:
    rng = np.random.default_rng(0)

    # -- 1. two structurally different matrices -------------------------
    regular = banded(5_000, 5_000, bandwidth=9, seed=1)
    skewed = power_law(5_000, 5_000, nnz=45_000, alpha=1.7, seed=2)
    print(f"regular: {regular.shape}, nnz={regular.nnz}")
    print(f"skewed : {skewed.shape}, nnz={skewed.nnz}")

    # -- 2. formats all compute the same product ------------------------
    x = rng.standard_normal(regular.n_cols)
    reference = CSRMatrix.from_coo(regular).spmv(x)
    for name in FORMAT_NAMES:
        y = as_format(regular, name).spmv(x)
        assert np.allclose(y, reference, rtol=1e-10), name
    print(f"all {len(FORMAT_NAMES)} formats agree with CSR on y = A @ x")

    # -- 3. simulated timings -------------------------------------------
    executor = SpMVExecutor(KEPLER_K40C, precision="single", seed=0)
    print("\nsimulated K40c timings (mean of 50 reps):")
    for matrix, label in ((regular, "regular"), (skewed, "skewed")):
        samples = executor.benchmark_all(matrix)
        times = {f: s.seconds * 1e6 for f, s in samples.items() if s is not None}
        best = min(times, key=times.get)
        row = "  ".join(f"{f}={t:8.1f}us" for f, t in times.items())
        print(f"  {label:8s} {row}   -> best: {best}")

    # -- 4. the paper's features ----------------------------------------
    feats = extract_features(skewed)
    print("\nfeatures of the skewed matrix (subset):")
    for key in ("n_rows", "nnz_tot", "nnz_mu", "nnz_sigma", "nnz_max", "nnzb_tot"):
        print(f"  {key:10s} = {feats[key]:.1f}")

    # -- 5. train a selector on a small corpus --------------------------
    print("\ntraining an XGBoost format selector on a 50-matrix corpus...")
    corpus = SyntheticCorpus(scale=0.02, seed=7, max_nnz=300_000)
    dataset = build_dataset(corpus, KEPLER_K40C, "single").drop_coo_best()
    selector = FormatSelector("xgboost", feature_set="set12")
    selector.fit(dataset)

    for matrix, label in ((regular, "regular"), (skewed, "skewed")):
        from repro.features import FEATURE_SETS, feature_vector

        fv = feature_vector(extract_features(matrix), FEATURE_SETS["set12"])
        predicted = selector.predict_formats(fv[None, :])[0]
        print(f"  predicted best format for the {label} matrix: {predicted}")


if __name__ == "__main__":
    main()
