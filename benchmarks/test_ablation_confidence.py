"""Ablation: SMAT-style confidence gating (Li et al., related work).

Sweeps the confidence threshold of the hybrid selector: at 0 the model
always answers alone; at 1 every matrix probes its top-2 candidate
formats on the device.  The interesting regime is in between — a small
probe budget buys back most of the ML mispredictions, which is exactly
the design argument of SMAT's confidence mechanism.
"""

import numpy as np

from repro.bench import bench_config, bench_corpus, bench_dataset, caption, render_table
from repro.core import ConfidenceSelector, FormatSelector
from repro.gpu import DEVICES, SpMVExecutor


def test_confidence_threshold_sweep(run_once):
    def measure():
        ds = bench_dataset("k40c", "single").drop_coo_best()
        corpus = {e.name: e for e in bench_corpus()}
        rng = np.random.default_rng(bench_config().seed)
        idx = rng.permutation(len(ds))
        n_test = min(40, max(2, len(ds) // 5))
        test = ds.subset(idx[:n_test])
        train = ds.subset(idx[n_test:])
        matrices = {n: corpus[n].build() for n in test.names}
        executor = SpMVExecutor(DEVICES["k40c"], "single", seed=bench_config().seed + 2)

        rows = {}
        for thr in (0.0, 0.5, 0.8, 1.0):
            cs = ConfidenceSelector(
                FormatSelector("xgboost", feature_set="set12"),
                executor,
                threshold=thr,
                top_k=2,
            )
            cs.fit(train)
            rows[thr] = cs.evaluate(test, matrices)
        return rows

    rows = run_once(measure)
    print()
    print(caption("Ablation: confidence gating",
                  "probing low-confidence predictions buys back accuracy"))
    print(render_table(
        ["threshold", "accuracy", "probe rate", "device ms spent"],
        [[f"{t:.1f}", f"{r['accuracy']:.2%}", f"{r['probe_rate']:.0%}",
          f"{1e3 * r['probe_seconds_total']:.2f}"] for t, r in rows.items()],
    ))

    # Probe rate grows with the threshold; accuracy never collapses.
    rates = [rows[t]["probe_rate"] for t in sorted(rows)]
    assert all(b >= a for a, b in zip(rates, rates[1:]))
    assert rows[1.0]["accuracy"] >= rows[0.0]["accuracy"] - 0.05
