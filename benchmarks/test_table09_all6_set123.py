"""Table IX — classification accuracy, all six formats.

Paper: all 6 formats, sets 1+2+3: no gain from the extra 6 features.
"""

from repro.formats import FORMAT_NAMES  # noqa: F401  (used by some tables)

from _classification import run_and_render

#: Paper-reported accuracies for side-by-side display.
PAPER = {
    ('k40c','single'): {"decision_tree": 0.78, "svm": 0.83, "mlp": 0.83, "xgboost": 0.85},
    ('k40c','double'): {"decision_tree": 0.82, "svm": 0.85, "mlp": 0.85, "xgboost": 0.88},
    ('p100','single'): {"decision_tree": 0.79, "svm": 0.83, "mlp": 0.82, "xgboost": 0.84},
    ('p100','double'): {"decision_tree": 0.79, "svm": 0.83, "mlp": 0.83, "xgboost": 0.85},
}


def test_table09_all6_set123(run_once):
    run_and_render(
        run_once,
        exp_id="Table IX",
        claim="all 6 formats, sets 1+2+3: no gain from the extra 6 features",
        formats=FORMAT_NAMES,
        feature_set="set123",
        paper=PAPER,
        min_best_accuracy=0.55,
    )
