"""Table I — corpus characteristics by nnz range.

Paper: 8 nnz bins over ~2300 SuiteSparse matrices; density falls from
~4.6 % to ~0.002 % as size grows, mean nnz/row rises from 7 to ~850,
and no clear pattern holds for the row-length standard deviation.
"""

from repro.bench import bench_config, caption, corpus_statistics, render_table


def test_table01_corpus_statistics(run_once):
    rows = run_once(corpus_statistics)
    assert rows, "corpus produced no bins"

    print()
    print(caption("Table I", "density falls with size; nnz_mu rises; sigma patternless"))
    print(
        render_table(
            ["nnz range", "count", "avg rows", "avg cols", "avg dens %", "nnz_mu", "nnz_sigma"],
            [
                (
                    r["range"],
                    r["count"],
                    f"{r['avg_rows']:.0f}",
                    f"{r['avg_cols']:.0f}",
                    f"{r['avg_density_pct']:.3f}",
                    f"{r['avg_nnz_mu']:.1f}",
                    f"{r['avg_nnz_sigma']:.1f}",
                )
                for r in rows
            ],
            title=f"(corpus scale = {bench_config().scale:g})",
        )
    )

    # Shape assertions: density decreases from the smallest to the
    # largest populated bin (paper's headline trend).
    if len(rows) >= 3:
        assert rows[0]["avg_density_pct"] > rows[-1]["avg_density_pct"], (
            "density should fall with matrix size"
        )
    # Bin counts follow the (scaled) Table I histogram: first bin largest.
    counts = [r["count"] for r in rows]
    assert counts[0] == max(counts)
