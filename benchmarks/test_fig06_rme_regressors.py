"""Fig. 6 — RME of MLP vs MLP-ensemble regressor by feature set.

Paper: joint 6-format execution-time regression on K80c/P100 double
reaches ~10-12 % RME with the tuned models; the MLP ensemble improves
on the single MLP (on average ~3.5 % absolute RME across machines) and
richer feature sets reduce RME versus set 1.
"""

from repro.bench import caption, regression_rme_by_feature_set, render_table


def _check(result):
    # Ensemble <= MLP for the richest feature set (the paper's headline),
    # and rich features beat the 5-feature set.
    assert result["set123"]["mlp_ensemble"] <= result["set123"]["mlp"] + 0.02
    assert result["set123"]["mlp_ensemble"] <= result["set1"]["mlp_ensemble"] + 0.02
    # RME magnitude in a plausible band (paper ~0.07-0.25 across sets).
    assert result["set123"]["mlp_ensemble"] < 0.35


def test_fig06_rme_k40c_double(run_once):
    result = run_once(regression_rme_by_feature_set, "k40c", "double")
    print()
    print(caption("Fig. 6 (K80c)", "MLP-ensemble beats MLP; RME ~10% with rich features"))
    print(
        render_table(
            ["feature set", "MLP RME", "MLP-ensemble RME"],
            [
                (fs, f"{r['mlp']:.3f}", f"{r['mlp_ensemble']:.3f}")
                for fs, r in result.items()
            ],
        )
    )
    _check(result)


def test_fig06_rme_p100_double(run_once):
    result = run_once(regression_rme_by_feature_set, "p100", "double")
    print()
    print(caption("Fig. 6 (P100)", "same trend on the Pascal machine"))
    print(
        render_table(
            ["feature set", "MLP RME", "MLP-ensemble RME"],
            [
                (fs, f"{r['mlp']:.3f}", f"{r['mlp_ensemble']:.3f}")
                for fs, r in result.items()
            ],
        )
    )
    _check(result)
