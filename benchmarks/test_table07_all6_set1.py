"""Table VII — classification accuracy, all six formats.

Paper: all 6 formats, feature set 1: 60-69%.
"""

from repro.formats import FORMAT_NAMES  # noqa: F401  (used by some tables)

from _classification import run_and_render

#: Paper-reported accuracies for side-by-side display.
PAPER = {
    ('k40c','single'): {"decision_tree": 0.6, "svm": 0.62, "mlp": 0.62, "xgboost": 0.67},
    ('k40c','double'): {"decision_tree": 0.64, "svm": 0.63, "mlp": 0.64, "xgboost": 0.68},
    ('p100','single'): {"decision_tree": 0.65, "svm": 0.65, "mlp": 0.67, "xgboost": 0.69},
    ('p100','double'): {"decision_tree": 0.63, "svm": 0.65, "mlp": 0.67, "xgboost": 0.69},
}


def test_table07_all6_set1(run_once):
    run_and_render(
        run_once,
        exp_id="Table VII",
        claim="all 6 formats, feature set 1: 60-69%",
        formats=FORMAT_NAMES,
        feature_set="set1",
        paper=PAPER,
        min_best_accuracy=0.4,
    )
