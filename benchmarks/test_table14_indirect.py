"""Table XIV — direct XGBoost vs indirect (regression) classification.

Paper: picking the format with the best *predicted* time loses 2-8 %
accuracy at 0 % tolerance, but with a 5 % tolerance band the indirect
method matches or beats direct classification (e.g. 92 % vs 88 % on
K80c double) — competitive with CNN-based selectors at a fraction of
the cost.
"""

from repro.bench import caption, format_pct, indirect_vs_direct, render_table

PAPER = {
    ("k40c", "single"): {"xgboost_direct": 0.85, "indirect_tol0": 0.78, "indirect_tol5": 0.90},
    ("k40c", "double"): {"xgboost_direct": 0.88, "indirect_tol0": 0.86, "indirect_tol5": 0.92},
    ("p100", "single"): {"xgboost_direct": 0.84, "indirect_tol0": 0.77, "indirect_tol5": 0.89},
    ("p100", "double"): {"xgboost_direct": 0.86, "indirect_tol0": 0.78, "indirect_tol5": 0.87},
}


def test_table14_indirect_classification(run_once):
    result = run_once(indirect_vs_direct)
    print()
    print(caption("Table XIV", "indirect@5% tolerance matches/beats direct XGBoost"))
    rows = []
    for (dev, prec), r in result.items():
        p = PAPER[(dev, prec)]
        rows.append(
            (
                f"{dev}/{prec}",
                f"{format_pct(r['xgboost_direct'])} (paper {p['xgboost_direct']:.0%})",
                f"{format_pct(r['indirect_tol0'])} (paper {p['indirect_tol0']:.0%})",
                f"{format_pct(r['indirect_tol5'])} (paper {p['indirect_tol5']:.0%})",
            )
        )
    print(render_table(["machine", "XGBoost direct", "indirect 0% tol", "indirect 5% tol"], rows))

    for (dev, prec), r in result.items():
        # Tolerance can only help.
        assert r["indirect_tol5"] >= r["indirect_tol0"]
        # The paper's headline: at 5% tolerance the indirect method is
        # at least on par with direct classification.
        assert r["indirect_tol5"] >= r["xgboost_direct"] - 0.05, (dev, prec, r)
