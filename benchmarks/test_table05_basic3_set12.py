"""Table V — classification accuracy, basic ELL/CSR/HYB study.

Paper: basic 3 formats, sets 1+2 (11 features): 85-91%, XGBoost best.
"""

from repro.formats import FORMAT_NAMES  # noqa: F401  (used by some tables)

from _classification import run_and_render

#: Paper-reported accuracies for side-by-side display.
PAPER = {
    ('k40c','single'): {"decision_tree": 0.89, "svm": 0.88, "mlp": 0.88, "xgboost": 0.91},
    ('k40c','double'): {"decision_tree": 0.86, "svm": 0.87, "mlp": 0.88, "xgboost": 0.89},
    ('p100','single'): {"decision_tree": 0.85, "svm": 0.89, "mlp": 0.87, "xgboost": 0.88},
    ('p100','double'): {"decision_tree": 0.86, "svm": 0.87, "mlp": 0.88, "xgboost": 0.89},
}


def test_table05_basic3_set12(run_once):
    run_and_render(
        run_once,
        exp_id="Table V",
        claim="basic 3 formats, sets 1+2 (11 features): 85-91%, XGBoost best",
        formats=("ell", "csr", "hyb"),
        feature_set="set12",
        paper=PAPER,
        min_best_accuracy=0.6,
    )
