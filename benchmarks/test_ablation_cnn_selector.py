"""Ablation: CNN-on-sparsity-image selector vs feature-based XGBoost.

The paper's related work (Zhao et al., PPoPP 2018) classifies formats
with a CNN over fixed-size matrix images and reports the best published
accuracy, while the paper argues its feature-based models reach similar
accuracy at a fraction of the inference cost — "CNN incurs a high
inference time" — making them better for compute-constrained
deployments (paper Sec. VII-VIII).

This bench reproduces the trade-off on the simulator corpus: it trains
both selectors on the same labels and measures (a) test accuracy and
(b) per-matrix *selection* cost (feature extraction + inference vs
image rendering + CNN forward pass).
"""

import time

import numpy as np

from repro.bench import bench_config, bench_corpus, bench_dataset, caption
from repro.core import FormatSelector
from repro.features import FEATURE_SETS, density_image, extract_features, feature_vector
from repro.ml import SimpleCNNClassifier, accuracy_score


def test_cnn_vs_xgboost_selector(run_once):
    def measure():
        ds = bench_dataset("k40c", "single").drop_coo_best()
        corpus = {e.name: e for e in bench_corpus()}
        # Rebuild matrices once for image rendering and timing probes.
        matrices = {name: corpus[name].build() for name in ds.names}
        images = np.stack([density_image(matrices[n], size=24) for n in ds.names])
        labels = ds.labels

        rng = np.random.default_rng(bench_config().seed)
        idx = rng.permutation(len(ds))
        n_test = max(1, len(ds) // 5)
        test_idx, train_idx = idx[:n_test], idx[n_test:]

        xgb = FormatSelector("xgboost", feature_set="set12")
        xgb.fit(ds.subset(train_idx))
        acc_xgb = xgb.score(ds.subset(test_idx))

        cnn = SimpleCNNClassifier(filters=(8, 16), hidden=48, n_epochs=25,
                                  seed=bench_config().seed)
        cnn.fit(images[train_idx], labels[train_idx])
        acc_cnn = accuracy_score(labels[test_idx], cnn.predict(images[test_idx]))

        # Per-matrix selection latency (end to end, mid-size test matrix).
        probe = matrices[ds.names[int(test_idx[0])]]
        t0 = time.perf_counter()
        for _ in range(5):
            fv = feature_vector(extract_features(probe), FEATURE_SETS["set12"])
            xgb.predict(fv[None, :])
        t_xgb = (time.perf_counter() - t0) / 5
        t0 = time.perf_counter()
        for _ in range(5):
            img = density_image(probe, size=24)
            cnn.predict(img[None])
        t_cnn = (time.perf_counter() - t0) / 5
        return {
            "acc_xgb": acc_xgb,
            "acc_cnn": acc_cnn,
            "t_xgb_ms": 1e3 * t_xgb,
            "t_cnn_ms": 1e3 * t_cnn,
            "n_train": len(train_idx),
        }

    r = run_once(measure)
    print()
    print(caption("Ablation: CNN selector", "similar accuracy, higher selection cost"))
    print(
        f"  xgboost: acc={r['acc_xgb']:.2%}  select={r['t_xgb_ms']:.2f} ms/matrix\n"
        f"  cnn    : acc={r['acc_cnn']:.2%}  select={r['t_cnn_ms']:.2f} ms/matrix"
    )
    # The CNN is a usable selector (well above chance) but the cheap
    # feature-based model holds its ground — the paper's conclusion.
    assert r["acc_cnn"] > 0.35
    assert r["acc_xgb"] >= r["acc_cnn"] - 0.10
