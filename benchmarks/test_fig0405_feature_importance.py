"""Figs. 4-5 — XGBoost feature importance (F-score) on both machines.

Paper: the ordering differs between machines/precisions but the *same
top-7 features* appear everywhere: n_rows, nnz_max, nnz_tot,
nnz_sigma, nnz_frac, nnzb_tot, nnz_mu — notably including the
set-3 chunk-count feature nnzb_tot.
"""

from repro.bench import caption, feature_importance, render_series
from repro.features import IMP_FEATURES


def test_fig0405_feature_importance(run_once):
    # Time one configuration under the benchmark fixture, run the rest plain.
    rankings = {("k40c", "single"): run_once(feature_importance, "k40c", "single")}
    for dev, prec in (("p100", "single"), ("k40c", "double"), ("p100", "double")):
        rankings[(dev, prec)] = feature_importance(dev, prec)

    print()
    print(caption("Figs. 4-5", "same top features across machines & precisions"))
    for key, ranking in rankings.items():
        print(render_series(f"{key[0]}/{key[1]} F-scores", dict(ranking[:10])))

    for key, ranking in rankings.items():
        top = [name for name, score in ranking[:9] if score > 0]
        # The paper's imp. features should dominate the top of every
        # ranking (allowing some reshuffling, as in the paper).
        overlap = len(set(top) & set(IMP_FEATURES))
        assert overlap >= 4, (
            f"{key}: only {overlap} of the paper's imp. features in top-9: {top}"
        )
        # Importance must be spread over several features, not one.
        assert len([s for _, s in ranking if s > 0]) >= 6
