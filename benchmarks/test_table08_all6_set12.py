"""Table VIII — classification accuracy, all six formats.

Paper: all 6 formats, sets 1+2: 79-88%, XGBoost best.
"""

from repro.formats import FORMAT_NAMES  # noqa: F401  (used by some tables)

from _classification import run_and_render

#: Paper-reported accuracies for side-by-side display.
PAPER = {
    ('k40c','single'): {"decision_tree": 0.81, "svm": 0.83, "mlp": 0.83, "xgboost": 0.85},
    ('k40c','double'): {"decision_tree": 0.81, "svm": 0.85, "mlp": 0.85, "xgboost": 0.88},
    ('p100','single'): {"decision_tree": 0.79, "svm": 0.83, "mlp": 0.82, "xgboost": 0.84},
    ('p100','double'): {"decision_tree": 0.81, "svm": 0.83, "mlp": 0.84, "xgboost": 0.86},
}


def test_table08_all6_set12(run_once):
    run_and_render(
        run_once,
        exp_id="Table VIII",
        claim="all 6 formats, sets 1+2: 79-88%, XGBoost best",
        formats=FORMAT_NAMES,
        feature_set="set12",
        paper=PAPER,
        min_best_accuracy=0.55,
    )
