"""Ablation: extend the study to 8 formats (+DIA, +BSR).

Beyond the paper: DIA (Bell & Garland's diagonal format) and BSR (block
CSR, part of the Zhao et al. GPU format set) join the candidate pool.
The experiment measures

* how often the new formats actually win (DIA should own the
  banded/stencil families; BSR the block-structured ones), and
* whether 8-way classification accuracy degrades relative to 6-way
  (more classes, but the new ones are highly separable).
"""

from collections import Counter

import numpy as np

from repro.bench import bench_config, bench_corpus, caption, render_table
from repro.core import FormatSelector, build_dataset
from repro.formats import EXTENSION_FORMATS, FORMAT_NAMES
from repro.gpu import DEVICES
from repro.ml import KFold


def test_extended_format_study(run_once):
    def measure():
        corpus = bench_corpus()
        formats = FORMAT_NAMES + EXTENSION_FORMATS
        ds = build_dataset(
            corpus, DEVICES["k40c"], "single", formats=formats, seed=bench_config().seed
        ).drop_coo_best()
        dist = Counter(ds.label_names.tolist())

        def cv_acc(data):
            accs = []
            for tr, te in KFold(3, seed=7).split(len(data)):
                sel = FormatSelector("xgboost", feature_set="set12")
                sel.fit(data.subset(tr))
                accs.append(sel.score(data.subset(te)))
            return float(np.mean(accs))

        acc8 = cv_acc(ds)
        ds6 = ds.restrict_formats(FORMAT_NAMES).drop_coo_best()
        acc6 = cv_acc(ds6)
        return {"n": len(ds), "dist": dict(dist), "acc8": acc8, "acc6": acc6}

    r = run_once(measure)
    print()
    print(caption("Ablation: 8 formats", "DIA/BSR claim their structural niches"))
    print(render_table(["format", "wins"], sorted(r["dist"].items(), key=lambda kv: -kv[1])))
    print(f"  8-way accuracy: {r['acc8']:.2%}   6-way accuracy: {r['acc6']:.2%}")

    wins_new = sum(r["dist"].get(f, 0) for f in EXTENSION_FORMATS)
    # The new formats win a real share of the corpus (banded/stencil/
    # block families exist at every scale) ...
    assert wins_new > 0.05 * r["n"], r["dist"]
    # ... without collapsing the classifier (the niches are separable).
    assert r["acc8"] > r["acc6"] - 0.12
