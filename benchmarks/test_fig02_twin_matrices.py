"""Fig. 2 — same macro shape, different performance.

Paper: ``rgg_n_2_19_s0`` and ``auto`` both have ≈6.5 M nnz and ~0.5 M
rows, yet CSR5 achieves 22 vs 18 GFLOPS and merge-CSR 21 vs 15 — the
motivation for structure-aware (not just size-aware) modeling.
"""

from repro.bench import caption, render_table, twin_matrices


def test_fig02_twin_matrices(run_once):
    twins = run_once(twin_matrices)
    print()
    print(caption("Fig. 2", "similar size, ~20-40% GFLOPS gap from locality alone"))
    print(
        render_table(
            ["matrix", "rows", "nnz", "CSR5 GF", "mergeCSR GF"],
            [
                (
                    name,
                    f"{d['rows']:,.0f}",
                    f"{d['nnz']:,.0f}",
                    f"{d['csr5_gflops']:.1f}",
                    f"{d['merge_csr_gflops']:.1f}",
                )
                for name, d in twins.items()
            ],
        )
    )
    rich, scat = twins["locality_rich"], twins["scattered"]
    # Same macro structure...
    assert rich["rows"] == scat["rows"]
    assert abs(rich["nnz"] - scat["nnz"]) / scat["nnz"] < 0.15
    # ...but the locality-rich matrix is clearly faster for both formats.
    assert rich["csr5_gflops"] > 1.1 * scat["csr5_gflops"]
    assert rich["merge_csr_gflops"] > 1.1 * scat["merge_csr_gflops"]
