import sys

from . import _SRC  # noqa: F401  (ensures src/ is importable)
from repro.bench.perf import main

if __name__ == "__main__":
    sys.exit(main())
