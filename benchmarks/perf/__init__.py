"""Runnable perf-benchmark entry point: ``python -m benchmarks.perf``.

Thin wrapper around :mod:`repro.bench.perf` (also exposed as the
``repro-spmv perf`` subcommand).  Writes ``BENCH_<date>.json`` tracking
the before/after timings of the one-pass matrix analyzer, the
presorted-feature tree/boosting training paths, serving latency, and —
via the multi-client load generator (:mod:`repro.bench.loadgen`) — the
concurrent socket server's sustained throughput, p99 latency and
cross-client micro-batch sizes.
"""

import sys
from pathlib import Path

# Allow running from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # pragma: no cover - path shim
    sys.path.insert(0, str(_SRC))
