"""Ablation: does reordering change the best format?

Reordering is the classic alternative to format selection: instead of
adapting the format to the structure, adapt the structure.  This bench
shuffles a banded matrix (destroying locality), applies reverse
Cuthill–McKee, and measures per-format SpMV times at each stage —
showing (a) how much structure destruction costs each format, (b) that
RCM recovers it, and (c) that the best-format *decision* itself depends
on the ordering, which is why selectors must see the matrix as it will
actually be used.
"""

import numpy as np

from repro.bench import bench_config, caption, render_table
from repro.formats import FORMAT_NAMES
from repro.gpu import DEVICES, SpMVExecutor
from repro.matrices import banded, bandwidth, permute, reverse_cuthill_mckee


def test_reordering_changes_the_race(run_once):
    def measure():
        # Large enough that x cannot hide in L2 once the order is shuffled.
        A = banded(250_000, 250_000, bandwidth=9, fill=1.0, seed=bench_config().seed)
        rng = np.random.default_rng(bench_config().seed + 1)
        p = rng.permutation(A.n_rows)
        shuffled = permute(A, row_perm=p, col_perm=p)
        perm = reverse_cuthill_mckee(shuffled)
        restored = permute(shuffled, row_perm=perm, col_perm=perm)

        executor = SpMVExecutor(DEVICES["k40c"], "single", seed=bench_config().seed)
        out = {}
        for name, M in (("original", A), ("shuffled", shuffled), ("rcm", restored)):
            times = {}
            for fmt in FORMAT_NAMES:
                try:
                    times[fmt] = executor.benchmark(M, fmt).seconds
                except Exception:
                    times[fmt] = float("nan")
            ok = {f: t for f, t in times.items() if t == t}
            out[name] = {"times": times, "best": min(ok, key=ok.get),
                         "bandwidth": bandwidth(M)}
        return out

    r = run_once(measure)
    print()
    print(caption("Ablation: reordering", "RCM restores locality lost to shuffling"))
    print(render_table(
        ["ordering", "bandwidth", "best"] + list(FORMAT_NAMES),
        [[name, d["bandwidth"], d["best"]]
         + [f"{1e6 * d['times'][f]:.0f}us" if d["times"][f] == d["times"][f] else "fail"
            for f in FORMAT_NAMES]
         for name, d in r.items()],
    ))

    # Shuffling destroys the band; RCM recovers it.
    assert r["shuffled"]["bandwidth"] > 10 * r["original"]["bandwidth"]
    assert r["rcm"]["bandwidth"] < 0.05 * r["shuffled"]["bandwidth"]
    # Every format slows down on the shuffled ordering...
    for fmt in ("csr", "csr5", "merge_csr"):
        assert r["shuffled"]["times"][fmt] > r["original"]["times"][fmt]
    # ...and RCM wins back most of the *excess* cost (a ratio of 1.0
    # means full recovery; it cannot drop below 1).
    excess_shuffled = r["shuffled"]["times"]["csr"] / r["original"]["times"]["csr"] - 1.0
    excess_rcm = r["rcm"]["times"]["csr"] / r["original"]["times"]["csr"] - 1.0
    assert excess_shuffled > 0.1
    assert excess_rcm < 0.5 * excess_shuffled
