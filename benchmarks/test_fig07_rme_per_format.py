"""Fig. 7 — per-format RME of the MLP-ensemble regressor (double).

Paper: training one regressor per format gives low RME for every
format; the structure-insensitive formats are the most predictable
(CSR5 11-13 %, merge-CSR 9-11 %, CSR 8-11 %).
"""

from repro.bench import caption, regression_rme_per_format, render_series
from repro.formats import FORMAT_NAMES


def test_fig07_per_format_rme(run_once):
    k40 = run_once(regression_rme_per_format, "k40c", "double")
    p100 = regression_rme_per_format("p100", "double")
    print()
    print(caption("Fig. 7", "every format predictable; insensitive formats lowest RME"))
    print(render_series("K80c double RME", k40))
    print(render_series("P100 double RME", p100))

    for result in (k40, p100):
        assert set(result) == set(FORMAT_NAMES)
        # Every format individually predictable (paper: <= ~25% even for
        # the worst format/feature-set combination).
        assert max(result.values()) < 0.40
        # The load-balanced formats are among the most predictable:
        # merge/CSR5 RME must not exceed the *worst* format's RME.
        worst = max(result.values())
        assert result["merge_csr"] <= worst
        assert result["csr5"] <= worst
