"""Tables XI-XIII — misprediction slowdown histograms (P100, double).

Paper: with 11+ features, 440-447 of ~460 test matrices see *no*
slowdown; only 1-5 exceed 1.5x; feature set 1 alone leaves ~90 matrices
with >=1.2x slowdowns.  XGBoost and the MLP ensemble edge out SVM.
"""

from repro.bench import caption, render_table, slowdown_analysis

PAPER_XGB = {  # Table XIII (XGBoost)
    "set1": {"no_slowdown": 274, "ge_1.2x": 92, "ge_2.0x": 29},
    "set12": {"no_slowdown": 446, "ge_1.2x": 10, "ge_2.0x": 1},
    "set123": {"no_slowdown": 446, "ge_1.2x": 10, "ge_2.0x": 1},
    "imp": {"no_slowdown": 445, "ge_1.2x": 11, "ge_2.0x": 1},
}


def _render(model: str, result):
    print()
    print(caption(f"Tables XI-XIII ({model})", "rich feature sets nearly eliminate costly mispredictions"))
    print(
        render_table(
            ["feature set", "no slowdown", ">1x", ">=1.2x", ">=1.5x", ">=2.0x"],
            [
                (fs, r["no_slowdown"], r["gt_1x"], r["ge_1.2x"], r["ge_1.5x"], r["ge_2.0x"])
                for fs, r in result.items()
            ],
        )
    )


def test_table13_xgboost_slowdown(run_once):
    result = run_once(slowdown_analysis, "xgboost")
    _render("xgboost", result)
    n = result["set1"]["no_slowdown"] + result["set1"]["gt_1x"]
    # Richer features => fewer harmful (>=1.2x) mispredictions, and the
    # severe (>=2x) tail is small with 11+ features.
    assert result["set12"]["ge_1.2x"] <= result["set1"]["ge_1.2x"]
    assert result["set12"]["ge_2.0x"] <= max(2, int(0.05 * n))


def test_table11_svm_slowdown(run_once):
    result = run_once(slowdown_analysis, "svm")
    _render("svm", result)
    assert result["set12"]["ge_1.5x"] <= result["set12"]["ge_1.2x"]


def test_table12_mlp_ensemble_slowdown(run_once):
    result = run_once(slowdown_analysis, "mlp")
    _render("mlp", result)
    assert result["set12"]["ge_1.5x"] <= result["set12"]["ge_1.2x"]
