"""Table VI — classification accuracy, basic ELL/CSR/HYB study.

Paper: basic 3 formats, sets 1+2+3 (17 features): extra features don't help.
"""

from repro.formats import FORMAT_NAMES  # noqa: F401  (used by some tables)

from _classification import run_and_render

#: Paper-reported accuracies for side-by-side display.
PAPER = {
    ('k40c','single'): {"decision_tree": 0.87, "svm": 0.88, "mlp": 0.87, "xgboost": 0.91},
    ('k40c','double'): {"decision_tree": 0.84, "svm": 0.87, "mlp": 0.86, "xgboost": 0.89},
    ('p100','single'): {"decision_tree": 0.86, "svm": 0.88, "mlp": 0.86, "xgboost": 0.88},
    ('p100','double'): {"decision_tree": 0.87, "svm": 0.87, "mlp": 0.89, "xgboost": 0.89},
}


def test_table06_basic3_set123(run_once):
    run_and_render(
        run_once,
        exp_id="Table VI",
        claim="basic 3 formats, sets 1+2+3 (17 features): extra features don't help",
        formats=("ell", "csr", "hyb"),
        feature_set="set123",
        paper=PAPER,
        min_best_accuracy=0.6,
    )
