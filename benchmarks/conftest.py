"""Shared fixtures for the benchmark suite.

Each bench runs its experiment exactly once under pytest-benchmark
(``rounds=1``): the experiments are end-to-end ML studies, not
microkernels, and their cost is dominated by model training.  The
kernel-level microbenchmarks (``test_kernels_micro.py``) use the
default multi-round timing instead.

Scale knobs (see :mod:`repro.bench.runner`):

* ``REPRO_SCALE``   corpus fraction (default 0.1 ≈ 230 matrices)
* ``REPRO_MAX_NNZ`` per-matrix cap (default 2e6)
* ``REPRO_SEED``    master seed

Run ``REPRO_SCALE=1.0 REPRO_MAX_NNZ=200000000 pytest benchmarks/
--benchmark-only`` for a full paper-scale reproduction (hours).
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark an experiment with a single round/iteration."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
