"""Table X — accuracy with only the top-7 "imp." features.

Paper: using the 7 features with the highest XGBoost F-score matches
(or beats) the best 11/17-feature accuracy — 77-88 % across machines,
XGBoost at 84-88 %.
"""

from _classification import run_and_render
from repro.bench import caption, imp_features_table
from repro.features import IMP_FEATURES
from repro.formats import FORMAT_NAMES

PAPER = {
    ("k40c", "single"): {"decision_tree": 0.79, "svm": 0.85, "mlp": 0.83, "xgboost": 0.85},
    ("k40c", "double"): {"decision_tree": 0.83, "svm": 0.87, "mlp": 0.86, "xgboost": 0.88},
    ("p100", "single"): {"decision_tree": 0.77, "svm": 0.83, "mlp": 0.83, "xgboost": 0.84},
    ("p100", "double"): {"decision_tree": 0.79, "svm": 0.84, "mlp": 0.85, "xgboost": 0.86},
}


def test_table10_imp_features(run_once):
    print()
    print(caption("Table X", f"7 features suffice: {', '.join(IMP_FEATURES)}"))
    run_and_render(
        run_once,
        exp_id="Table X",
        claim="top-7 'imp.' features match the full-set accuracy",
        formats=FORMAT_NAMES,
        feature_set=tuple(IMP_FEATURES),
        paper=PAPER,
        min_best_accuracy=0.55,
    )
