"""Ablation: ML selection vs the adaptive sample-and-measure baseline.

The paper's related work (Zardoshti et al.) selects formats by timing a
small portion of the matrix in every candidate format.  This bench
quantifies the trade-off on the shared corpus:

* selection quality — tolerant accuracy of both approaches;
* selection cost — the adaptive probe spends real device time on
  6 formats x probe reps, while the ML path costs one feature scan
  plus model inference on the host.
"""

import numpy as np

from repro.bench import bench_config, bench_corpus, bench_dataset, caption
from repro.core import FormatSelector, SamplingSelector, tolerant_accuracy
from repro.gpu import DEVICES, SpMVExecutor


def test_sampling_vs_ml_selector(run_once):
    def measure():
        ds = bench_dataset("k40c", "single").drop_coo_best()
        corpus = {e.name: e for e in bench_corpus()}
        rng = np.random.default_rng(bench_config().seed)
        idx = rng.permutation(len(ds))
        n_test = min(25, max(1, len(ds) // 5))  # probes are expensive
        test_idx, train_idx = idx[:n_test], idx[n_test:]
        test = ds.subset(test_idx)

        ml = FormatSelector("xgboost", feature_set="set12")
        ml.fit(ds.subset(train_idx))
        acc_ml = tolerant_accuracy(test.times, ml.predict(test), 0.05)

        executor = SpMVExecutor(DEVICES["k40c"], "single", seed=bench_config().seed + 1)
        sampler = SamplingSelector(executor, fraction=0.05, probe_reps=3)
        fmt_index = {f: i for i, f in enumerate(test.formats)}
        picks = []
        probe_cost = 0.0
        for name in test.names:
            matrix = corpus[name].build()
            picks.append(fmt_index[sampler.predict_format(matrix)])
            probe_cost += sampler.probe_cost_seconds(matrix)
        acc_sampling = tolerant_accuracy(test.times, np.array(picks), 0.05)
        return {
            "acc_ml": acc_ml,
            "acc_sampling": acc_sampling,
            "probe_cost_ms": 1e3 * probe_cost / n_test,
            "n_test": n_test,
        }

    r = run_once(measure)
    print()
    print(caption("Ablation: sampling selector",
                  "adaptive probing needs no training but pays device time per matrix"))
    print(
        f"  ML (xgboost):  acc@5%={r['acc_ml']:.2%}   cost: one feature scan + inference\n"
        f"  sampling probe: acc@5%={r['acc_sampling']:.2%}   "
        f"cost: {r['probe_cost_ms']:.2f} ms device time per matrix"
    )
    # Both are real selectors...
    assert r["acc_sampling"] > 0.3
    # ...and the probe consumes nonzero device time every single matrix.
    assert r["probe_cost_ms"] > 0
