"""Microbenchmarks of the Python SpMV kernels themselves.

These time the *actual* format implementations (not the simulator) on
a mid-size matrix, using pytest-benchmark's normal multi-round
statistics.  They guard against performance regressions in the
vectorised kernels — e.g. an accidental O(rows x width) ELL path or a
de-vectorised merge partition loop.
"""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, as_format
from repro.matrices import power_law, stencil_2d


@pytest.fixture(scope="module")
def workload():
    A = power_law(20_000, 20_000, nnz=300_000, alpha=2.2, seed=1)
    x = np.random.default_rng(0).standard_normal(20_000)
    return A, x


@pytest.mark.parametrize("fmt", [f for f in FORMAT_NAMES if f != "ell"])
def test_spmv_kernel(benchmark, workload, fmt):
    A, x = workload
    M = as_format(A, fmt)
    y = benchmark(M.spmv, x)
    assert y.shape == (A.n_rows,)


def test_spmv_kernel_ell(benchmark):
    # ELL gets a regular matrix (power-law padding would be pathological,
    # exactly as on a real GPU).
    A = stencil_2d(150, 150, points=9)
    x = np.ones(A.n_cols)
    M = as_format(A, "ell")
    y = benchmark(M.spmv, x)
    assert y.shape == (A.n_rows,)


def test_feature_extraction_speed(benchmark, workload):
    from repro.features import extract_features

    A, _ = workload
    feats = benchmark(extract_features, A)
    assert feats["nnz_tot"] == A.nnz


def test_profile_speed(benchmark, workload):
    from repro.gpu import profile_matrix

    A, _ = workload
    prof = benchmark(profile_matrix, A)
    assert prof.nnz == A.nnz


def test_conversion_speed(benchmark, workload):
    A, _ = workload
    csr5 = benchmark(as_format, A, "csr5")
    assert csr5.nnz == A.nnz
