"""Fig. 3 — GFLOPS of all six formats across matrices (K80c, single).

Paper: achieved GFLOPS vary strongly per matrix (0-25 GF), the gap
between formats on one matrix can be large, and *no single format wins
everywhere*.
"""

import math

import numpy as np

from repro.bench import caption, format_gflops_sweep, render_table
from repro.formats import FORMAT_NAMES


def test_fig03_no_single_winner(run_once):
    sweep = run_once(format_gflops_sweep, 12)
    print()
    print(caption("Fig. 3", "K80c single: no single format is a consistent winner"))
    print(
        render_table(
            ["matrix"] + list(FORMAT_NAMES),
            [
                [name] + [
                    "fail" if math.isnan(row[f]) else f"{row[f]:.1f}" for f in FORMAT_NAMES
                ]
                for name, row in sweep.items()
            ],
        )
    )

    winners = set()
    for row in sweep.values():
        ok = {f: g for f, g in row.items() if not math.isnan(g)}
        assert ok, "every format failed on a matrix"
        winners.add(max(ok, key=ok.get))
    assert len(winners) >= 2, f"a single format won everything: {winners}"

    # GFLOPS magnitudes are in the paper's K80c range (0-30 GF) and the
    # best per matrix spans a wide dynamic range.
    best = [max(g for g in row.values() if not math.isnan(g)) for row in sweep.values()]
    assert max(best) < 60.0
    assert max(best) / max(min(best), 1e-9) > 2.0
