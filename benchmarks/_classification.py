"""Shared driver for the classification-accuracy tables (IV-X)."""

from typing import Dict, Optional, Sequence, Tuple

from repro.bench import MODELS, caption, classification_table, format_pct, render_table

#: Paper-reported accuracies keyed by (device, precision) → model, used
#: purely for side-by-side display.
PaperTable = Dict[Tuple[str, str], Dict[str, float]]


def run_and_render(
    run_once,
    *,
    exp_id: str,
    claim: str,
    formats: Sequence[str],
    feature_set,
    paper: PaperTable,
    cv: int = 3,
    min_best_accuracy: float = 0.5,
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Run one table's experiment, print it next to the paper's numbers."""
    result = run_once(
        classification_table, formats=formats, feature_set=feature_set, cv=cv
    )
    print()
    print(caption(exp_id, claim))
    rows = []
    for (dev, prec), accs in result.items():
        paper_row = paper.get((dev, prec), {})
        rows.append(
            [f"{dev}/{prec}"]
            + [
                f"{format_pct(accs[m])} (paper {paper_row.get(m, float('nan')) * 100:.0f}%)"
                if m in paper_row
                else format_pct(accs[m])
                for m in MODELS
            ]
        )
    print(render_table(["machine"] + list(MODELS), rows))

    for (dev, prec), accs in result.items():
        best = max(accs.values())
        assert best >= min_best_accuracy, (
            f"{dev}/{prec}: best accuracy {best:.2f} below sanity floor"
        )
        # The paper's key model finding: XGBoost is the best (or within
        # a modest gap of the best) across machines and precisions.  The
        # gap budget covers CI-scale cross-validation noise (folds of a
        # few dozen matrices).
        assert accs["xgboost"] >= best - 0.12, (
            f"{dev}/{prec}: xgboost far from best ({accs})"
        )
    return result
