"""Table IV — classification accuracy, basic ELL/CSR/HYB study.

Paper: basic 3 formats, feature set 1 (5 O(1) features): 62-75%.
"""

from repro.formats import FORMAT_NAMES  # noqa: F401  (used by some tables)

from _classification import run_and_render

#: Paper-reported accuracies for side-by-side display.
PAPER = {
    ('k40c','single'): {"decision_tree": 0.69, "svm": 0.62, "mlp": 0.68, "xgboost": 0.69},
    ('k40c','double'): {"decision_tree": 0.69, "svm": 0.62, "mlp": 0.68, "xgboost": 0.7},
    ('p100','single'): {"decision_tree": 0.72, "svm": 0.72, "mlp": 0.75, "xgboost": 0.75},
    ('p100','double'): {"decision_tree": 0.72, "svm": 0.69, "mlp": 0.73, "xgboost": 0.74},
}


def test_table04_basic3_set1(run_once):
    run_and_render(
        run_once,
        exp_id="Table IV",
        claim="basic 3 formats, feature set 1 (5 O(1) features): 62-75%",
        formats=("ell", "csr", "hyb"),
        feature_set="set1",
        paper=PAPER,
        min_best_accuracy=0.45,
    )
