"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's own tables: they quantify how much each
design decision contributes.

* COO-exclusion rule (paper Sec. V-A): measured performance loss of
  never choosing COO must be minimal.
* Indirect-classification tolerance sweep (0-10 %).
* MLP-ensemble size (1-9 members).
* Label-noise robustness: accuracy vs simulator noise sigma.
* HYB threshold policy: the paper's mu rule vs the cuSPARSE histogram
  rule.
"""

import numpy as np

from repro.bench import bench_config, bench_corpus, bench_dataset, caption, render_series
from repro.core import FormatSelector, IndirectClassifier, PerformancePredictor, build_dataset
from repro.gpu import DEVICES, NoiseModel
from repro.ml import KFold


def _split(ds, seed=11):
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(ds))
    n_test = max(1, len(ds) // 5)
    return ds.subset(idx[n_test:]), ds.subset(idx[:n_test])


def test_ablation_coo_exclusion_rule(run_once):
    """Dropping COO costs almost nothing (paper Sec. V-A)."""

    def measure():
        ds = bench_dataset("k40c", "single")
        coo_idx = ds.formats.index("coo")
        labels = ds.labels
        coo_best = labels == coo_idx
        if not coo_best.any():
            return {"coo_best_fraction": 0.0, "mean_loss": 0.0}
        times = ds.times[coo_best]
        best = times.min(axis=1)
        rest = np.delete(times, coo_idx, axis=1).min(axis=1)
        return {
            "coo_best_fraction": float(coo_best.mean()),
            "mean_loss": float((rest / best - 1.0).mean()),
        }

    r = run_once(measure)
    print()
    print(caption("Ablation: COO rule", "excluding COO loses <~5% on the few COO-best matrices"))
    print(f"  COO-best fraction: {r['coo_best_fraction']:.3f}  mean loss if excluded: {r['mean_loss']:.3%}")
    assert r["coo_best_fraction"] < 0.25
    assert r["mean_loss"] < 0.25


def test_ablation_tolerance_sweep(run_once):
    """Indirect accuracy grows monotonically with the tolerance band."""

    def measure():
        ds = bench_dataset("k40c", "double").drop_coo_best()
        train, test = _split(ds)
        ic = IndirectClassifier(
            PerformancePredictor("mlp_ensemble", feature_set="set123", mode="joint")
        )
        ic.fit(train)
        return {f"{tol:.0%}": ic.score(test, tolerance=tol) for tol in (0.0, 0.02, 0.05, 0.10)}

    accs = run_once(measure)
    print()
    print(caption("Ablation: tolerance", "Table XIV generalised to a sweep"))
    print(render_series("indirect accuracy", accs))
    vals = list(accs.values())
    assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:])), "tolerance must not hurt"


def test_ablation_ensemble_size(run_once):
    """RME improves (then saturates) with ensemble size."""

    def measure():
        ds = bench_dataset("k40c", "double").drop_coo_best()
        train, test = _split(ds)
        out = {}
        for m in (1, 3, 5, 9):
            pp = PerformancePredictor(
                "mlp_ensemble", feature_set="set123", mode="joint", n_members=m
            )
            pp.fit(train)
            out[f"{m} members"] = pp.rme(test)
        return out

    rmes = run_once(measure)
    print()
    print(caption("Ablation: ensemble size", "the paper fixes 'an ensemble'; we sweep it"))
    print(render_series("joint RME", rmes))
    assert rmes["5 members"] <= rmes["1 members"] + 0.02


def test_ablation_label_noise(run_once):
    """Classification accuracy degrades gracefully with timing noise."""

    def measure():
        corpus = bench_corpus()
        out = {}
        for sigma in (0.0, 0.02, 0.08):
            ds = build_dataset(
                corpus,
                DEVICES["k40c"],
                "single",
                noise=NoiseModel(sigma, 0.03),
                seed=bench_config().seed,
            ).drop_coo_best()
            accs = []
            for tr, te in KFold(3, seed=5).split(len(ds)):
                sel = FormatSelector("xgboost", feature_set="set12")
                sel.fit(ds.subset(tr))
                accs.append(sel.score(ds.subset(te)))
            out[f"sigma={sigma:g}"] = float(np.mean(accs))
        return out

    accs = run_once(measure)
    print()
    print(caption("Ablation: label noise", "accuracy ceiling is set by measurement noise"))
    print(render_series("xgboost set12 accuracy", accs))
    assert accs["sigma=0"] >= accs["sigma=0.08"] - 0.05


def test_ablation_hyb_threshold(run_once):
    """The paper's mu threshold vs the cuSPARSE histogram rule."""
    from repro.formats import HYBMatrix, histogram_threshold, mu_threshold
    from repro.matrices import dense_rows, power_law

    def measure():
        out = {}
        for name, A in (
            ("dense_rows", dense_rows(30_000, 30_000, base_density=0.0005, n_dense=4, seed=2)),
            ("power_law", power_law(30_000, 30_000, nnz=400_000, alpha=1.8, seed=3)),
        ):
            mu_split = HYBMatrix.from_coo(A, threshold=mu_threshold(A))
            hist_split = HYBMatrix.from_coo(A, threshold=histogram_threshold(A))
            out[name] = {
                "mu_spill_frac": mu_split.coo_fraction,
                "hist_spill_frac": hist_split.coo_fraction,
                "mu_bytes": mu_split.memory_bytes(),
                "hist_bytes": hist_split.memory_bytes(),
            }
        return out

    r = run_once(measure)
    print()
    print(caption("Ablation: HYB threshold", "mu rule vs cuSPARSE histogram rule"))
    for name, d in r.items():
        print(
            f"  {name:11s} spill mu={d['mu_spill_frac']:.3f} hist={d['hist_spill_frac']:.3f} "
            f"bytes mu={d['mu_bytes'] / 1e6:.1f}M hist={d['hist_bytes'] / 1e6:.1f}M"
        )
    for d in r.values():
        assert 0.0 <= d["mu_spill_frac"] <= 1.0
        assert 0.0 <= d["hist_spill_frac"] <= 1.0
