#!/usr/bin/env python
"""Dump the public API surface of the ``repro`` package as stable text.

Walks every public module, resolves each ``__all__`` export and prints
one line per symbol — classes additionally list their public methods
with full signatures.  The output is deterministic (sorted, no
addresses, no versions), so a checked-in copy acts as an API-surface
lockfile:

    PYTHONPATH=src python tools/dump_api.py --out docs/api_surface.txt
    PYTHONPATH=src python tools/dump_api.py --check   # CI / tier-1 guard

``--check`` diffs the live surface against ``docs/api_surface.txt`` and
exits non-zero on any drift, so removing or reshaping a public symbol
is always a *reviewed* decision (regenerate the file in the same
commit), never an accident.
"""

from __future__ import annotations

import argparse
import difflib
import inspect
import re
import sys
from pathlib import Path
from typing import List

#: Public modules, in presentation order.  The root module's lazy
#: exports (PEP 562) resolve like any attribute, so they are covered.
PUBLIC_MODULES = [
    "repro",
    "repro.config",
    "repro.tuning",
    "repro.obs",
    "repro.formats",
    "repro.gpu",
    "repro.matrices",
    "repro.features",
    "repro.analysis",
    "repro.ml",
    "repro.ml.compiled",
    "repro.ml.serialize",
    "repro.core",
    "repro.bench",
    "repro.serve",
    "repro.cli",
]

_ADDR_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _signature(obj) -> str:
    try:
        sig = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    return _ADDR_RE.sub("", sig)


def _describe(name: str, obj, lines: List[str]) -> None:
    if inspect.isclass(obj):
        bases = [b.__name__ for b in obj.__bases__ if b is not object]
        suffix = f"({', '.join(bases)})" if bases else ""
        lines.append(f"  class {name}{suffix}")
        members = inspect.getmembers(obj)
        for mname, member in sorted(members):
            if mname.startswith("_"):
                continue
            if isinstance(inspect.getattr_static(obj, mname, None), property):
                lines.append(f"    {name}.{mname} [property]")
            elif callable(member):
                lines.append(f"    {name}.{mname}{_signature(member)}")
    elif inspect.isfunction(obj):
        lines.append(f"  def {name}{_signature(obj)}")
    elif isinstance(obj, dict):
        lines.append(f"  {name}: dict[{', '.join(sorted(map(str, obj)))}]")
    elif isinstance(obj, (str, int, float, tuple, frozenset)):
        lines.append(f"  {name} = {obj!r}")
    else:
        lines.append(f"  {name}: {type(obj).__name__}")


def dump_api() -> str:
    """The full public surface as one deterministic text blob."""
    import importlib

    lines: List[str] = [
        "# Public API surface of the repro package.",
        "# Regenerate with: PYTHONPATH=src python tools/dump_api.py "
        "--out docs/api_surface.txt",
    ]
    for modname in PUBLIC_MODULES:
        mod = importlib.import_module(modname)
        exports = sorted(getattr(mod, "__all__", []))
        lines.append("")
        lines.append(f"{modname}")
        for symbol in exports:
            if symbol == "__version__":
                continue  # the one export allowed to change every release
            _describe(symbol, getattr(mod, symbol), lines)
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write the surface to this file")
    parser.add_argument("--check", action="store_true",
                        help="diff against docs/api_surface.txt; exit 1 on drift")
    args = parser.parse_args(argv)

    surface = dump_api()
    if args.check:
        locked_path = Path(__file__).resolve().parent.parent / "docs" / "api_surface.txt"
        locked = locked_path.read_text() if locked_path.exists() else ""
        if surface != locked:
            diff = difflib.unified_diff(
                locked.splitlines(keepends=True),
                surface.splitlines(keepends=True),
                fromfile=str(locked_path),
                tofile="live API",
            )
            sys.stdout.writelines(diff)
            print("\nAPI surface drifted; regenerate docs/api_surface.txt "
                  "if the change is intended.", file=sys.stderr)
            return 1
        print("API surface matches docs/api_surface.txt")
        return 0
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(surface)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(surface)
    return 0


if __name__ == "__main__":
    sys.exit(main())
